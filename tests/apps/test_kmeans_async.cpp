#include "apps/kmeans_async_app.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "apps/kmeans_app.hpp"
#include "trace/timeline.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

KmeansConfig small(bool streamed = true) {
  KmeansConfig kc;
  kc.points = 2000;
  kc.dims = 6;
  kc.clusters = 4;
  kc.iterations = 8;
  kc.tiles = 4;
  kc.common.partitions = 4;
  kc.common.streamed = streamed;
  return kc;
}

TEST(KmeansAsync, RunsAndProducesFiniteCentroids) {
  const auto r = KmeansAsyncApp::run(cfg(), small());
  EXPECT_GT(r.ms, 0.0);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_NE(r.checksum, 0.0);
}

TEST(KmeansAsync, IsDeterministic) {
  const auto a = KmeansAsyncApp::run(cfg(), small());
  const auto b = KmeansAsyncApp::run(cfg(), small());
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(KmeansAsync, IterationCountActuallyMatters) {
  // The stale-centroid pipeline must still be doing real work: more
  // iterations move the centroids further from the seed.
  auto kc = small();
  kc.iterations = 1;
  const auto one = KmeansAsyncApp::run(cfg(), kc);
  kc.iterations = 20;
  const auto twenty = KmeansAsyncApp::run(cfg(), kc);
  EXPECT_NE(one.checksum, twenty.checksum);
  EXPECT_GT(twenty.ms, one.ms);
}

TEST(KmeansAsync, MatchesSynchronousCentroidScale) {
  // Stale centroids change the trajectory, not the data: centroid
  // magnitudes must stay in the data's range (points are uniform in
  // [0, 10], so every centroid coordinate averages ~5).
  auto kc = small();
  kc.iterations = 40;
  const auto async = KmeansAsyncApp::run(cfg(), kc);
  const double per_coord =
      async.checksum / (2.0 * static_cast<double>(kc.clusters * kc.dims));
  EXPECT_GT(per_coord, 1.0);
  EXPECT_LT(per_coord, 9.0);
}

TEST(KmeansAsync, TransformationMakesItOverlappable) {
  // The whole point of the future-work transformation: centroid uploads /
  // partials downloads overlap kernel execution, which the synchronous
  // version's per-iteration barrier prevents almost entirely.
  KmeansConfig kc;
  kc.points = 1120000;
  kc.dims = 34;
  kc.clusters = 8;
  kc.iterations = 10;
  kc.tiles = 28;
  kc.common.partitions = 28;
  kc.common.functional = false;

  const auto async = KmeansAsyncApp::run(cfg(), kc);
  const auto h2d_overlap =
      async.timeline.overlap(trace::SpanKind::H2D, trace::SpanKind::Kernel) +
      async.timeline.overlap(trace::SpanKind::D2H, trace::SpanKind::Kernel);
  EXPECT_GT(h2d_overlap, sim::SimTime::zero());
}

TEST(KmeansAsync, FasterThanSynchronousAtScale) {
  KmeansConfig kc;
  kc.points = 1120000;
  kc.dims = 34;
  kc.clusters = 8;
  kc.iterations = 50;
  kc.tiles = 28;
  kc.common.partitions = 28;
  kc.common.functional = false;
  const auto async = KmeansAsyncApp::run(cfg(), kc);
  const auto sync = KmeansApp::run(cfg(), kc);
  EXPECT_LT(async.ms, sync.ms);
}

TEST(KmeansAsync, InvalidConfigThrows) {
  auto kc = small();
  kc.tiles = 0;
  EXPECT_THROW(KmeansAsyncApp::run(cfg(), kc), std::invalid_argument);
  kc = small();
  kc.iterations = 0;
  EXPECT_THROW(KmeansAsyncApp::run(cfg(), kc), std::invalid_argument);
}

}  // namespace
}  // namespace ms::apps
