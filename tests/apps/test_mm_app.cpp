#include "apps/mm_app.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/timeline.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

MmConfig small(bool streamed) {
  MmConfig mc;
  mc.dim = 96;
  mc.tile_grid = 3;
  mc.common.partitions = 4;
  mc.common.streamed = streamed;
  return mc;
}

TEST(MmApp, StreamedMatchesBaselineChecksum) {
  const auto s = MmApp::run(cfg(), small(true));
  const auto b = MmApp::run(cfg(), small(false));
  EXPECT_NEAR(s.checksum, b.checksum, 1e-6 * std::abs(b.checksum));
  EXPECT_GT(s.gflops, 0.0);
  EXPECT_GT(b.gflops, 0.0);
}

TEST(MmApp, ChecksumStableAcrossPartitionCounts) {
  double first = 0.0;
  for (const int p : {1, 2, 4, 7}) {
    auto mc = small(true);
    mc.common.partitions = p;
    const auto r = MmApp::run(cfg(), mc);
    if (p == 1) {
      first = r.checksum;
    } else {
      EXPECT_NEAR(r.checksum, first, 1e-9 * std::abs(first)) << "P=" << p;
    }
  }
}

TEST(MmApp, ChecksumStableAcrossTileGrids) {
  double first = 0.0;
  bool have = false;
  for (const int g : {1, 2, 4, 8}) {
    auto mc = small(true);
    mc.dim = 64;
    mc.tile_grid = g;
    const auto r = MmApp::run(cfg(), mc);
    if (!have) {
      first = r.checksum;
      have = true;
    } else {
      EXPECT_NEAR(r.checksum, first, 1e-9 * std::abs(first)) << "g=" << g;
    }
  }
}

TEST(MmApp, StreamedVersionOverlapsTransfersWithCompute) {
  const auto r = MmApp::run(cfg(), small(true));
  EXPECT_GT(r.timeline.overlap(trace::SpanKind::H2D, trace::SpanKind::Kernel),
            sim::SimTime::zero());
}

TEST(MmApp, BaselineMovesSameDataVolume) {
  // Band sharing: streamed must transfer 2 D^2 in and D^2 out, like the
  // baseline (no re-send amplification).
  const auto s = MmApp::run(cfg(), small(true));
  const auto b = MmApp::run(cfg(), small(false));
  auto h2d_bytes = [](const trace::Timeline& t) {
    std::uint64_t total = 0;
    for (const auto& sp : t.spans()) {
      if (sp.kind == trace::SpanKind::H2D) total += sp.bytes;
    }
    return total;
  };
  EXPECT_EQ(h2d_bytes(s.timeline), h2d_bytes(b.timeline));
}

TEST(MmApp, TimingOnlyModeRunsWithoutData) {
  auto mc = small(true);
  mc.common.functional = false;
  mc.dim = 6000;  // paper scale: impossible to hold functionally in tests
  mc.tile_grid = 10;
  const auto r = MmApp::run(cfg(), mc);
  EXPECT_GT(r.ms, 0.0);
  EXPECT_GT(r.gflops, 100.0);  // should be in the paper's few-hundred range
  EXPECT_EQ(r.checksum, 0.0);
}

TEST(MmApp, InvalidTileGridThrows) {
  auto mc = small(true);
  mc.dim = 97;  // prime: 3 does not divide it
  EXPECT_THROW(MmApp::run(cfg(), mc), std::invalid_argument);
  mc = small(true);
  mc.tile_grid = 0;
  EXPECT_THROW(MmApp::run(cfg(), mc), std::invalid_argument);
}

TEST(MmApp, FlopFormula) {
  EXPECT_DOUBLE_EQ(MmApp::total_flops(100), 2e6);
}

TEST(MmApp, MoreProtocolIterationsGiveSameMean) {
  auto mc = small(true);
  mc.common.protocol_iterations = 2;
  const auto a = MmApp::run(cfg(), mc);
  mc.common.protocol_iterations = 5;
  const auto b = MmApp::run(cfg(), mc);
  EXPECT_NEAR(a.ms, b.ms, 1e-9);  // deterministic simulator
}

}  // namespace
}  // namespace ms::apps
