#include "apps/lu_app.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "apps/cf_app.hpp"
#include "kern/lu.hpp"
#include "trace/timeline.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

LuConfig small(bool streamed) {
  LuConfig lc;
  lc.dim = 96;
  lc.tile = 24;
  lc.common.partitions = 4;
  lc.common.streamed = streamed;
  return lc;
}

TEST(LuApp, PackUnpackRoundTrip) {
  const std::size_t n = 12, tb = 4;
  std::vector<double> dense(n * n);
  fill_uniform(std::span<double>(dense), 3, -1.0, 1.0);
  const auto packed = LuApp::pack_tiles(dense, n, tb);
  std::vector<double> back(n * n, 0.0);
  LuApp::unpack_tiles(packed, back, n, tb);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(back[i], dense[i]);
}

TEST(LuApp, StreamedMatchesBaselineChecksum) {
  const auto s = LuApp::run(cfg(), small(true));
  const auto b = LuApp::run(cfg(), small(false));
  EXPECT_NEAR(s.checksum, b.checksum, 1e-6 * std::abs(b.checksum));
}

TEST(LuApp, FactorIsActuallyLu) {
  LuConfig lc = small(true);
  const auto r = LuApp::run(cfg(), lc);

  std::vector<double> dense(lc.dim * lc.dim);
  fill_spd(std::span<double>(dense), lc.dim, 1313);  // the app's seed path
  auto reference = dense;
  ASSERT_TRUE(kern::lu_reference(reference.data(), lc.dim, lc.dim));
  double expect = 0.0;
  for (const double x : reference) expect += x;
  EXPECT_NEAR(r.checksum, expect, 1e-6 * std::abs(expect));
}

TEST(LuApp, ChecksumStableAcrossTileSizes) {
  double first = 0.0;
  bool have = false;
  for (const std::size_t tb : {96u, 48u, 24u, 12u}) {
    auto lc = small(true);
    lc.tile = tb;
    const auto r = LuApp::run(cfg(), lc);
    if (!have) {
      first = r.checksum;
      have = true;
    } else {
      EXPECT_NEAR(r.checksum, first, 1e-6 * std::abs(first)) << "tile=" << tb;
    }
  }
}

TEST(LuApp, ChecksumStableAcrossPartitionCounts) {
  double first = 0.0;
  for (const int p : {1, 2, 4}) {
    auto lc = small(true);
    lc.common.partitions = p;
    const auto r = LuApp::run(cfg(), lc);
    if (p == 1) {
      first = r.checksum;
    } else {
      EXPECT_NEAR(r.checksum, first, 1e-9 * std::abs(first)) << "P=" << p;
    }
  }
}

TEST(LuApp, TwoMicsMatchOneMic) {
  const auto one = LuApp::run(sim::SimConfig::phi_31sp(), small(true));
  const auto two = LuApp::run(sim::SimConfig::phi_31sp_x2(), small(true));
  EXPECT_NEAR(two.checksum, one.checksum, 1e-9 * std::abs(one.checksum));
}

TEST(LuApp, RoughlyHalfAsEfficientAsCholesky) {
  // The paper's own remark: "the Cholesky factorization is roughly twice as
  // efficient as LU factorization for solving system of linear equations".
  // Same matrix order, same tile size, same streams: LU does 2x the flops,
  // so its time should be ~2x CF's.
  LuConfig lc;
  lc.dim = 4800;
  lc.tile = 480;
  lc.common.partitions = 4;
  lc.common.functional = false;
  const auto lu = LuApp::run(cfg(), lc);

  CfConfig cc;
  cc.dim = 4800;
  cc.tile = 480;
  cc.common.partitions = 4;
  cc.common.functional = false;
  const auto cf = CfApp::run(cfg(), cc);

  EXPECT_NEAR(lu.ms / cf.ms, 2.0, 0.5);
}

TEST(LuApp, OverlapsTransfersWithCompute) {
  LuConfig lc;
  lc.dim = 2400;
  lc.tile = 240;
  lc.common.partitions = 4;
  lc.common.functional = false;
  const auto r = LuApp::run(cfg(), lc);
  EXPECT_GT(r.timeline.overlap(trace::SpanKind::H2D, trace::SpanKind::Kernel),
            sim::SimTime::zero());
}

TEST(LuApp, InvalidTileThrows) {
  auto lc = small(true);
  lc.tile = 37;
  EXPECT_THROW(LuApp::run(cfg(), lc), std::invalid_argument);
}

TEST(LuApp, FlopFormula) {
  EXPECT_DOUBLE_EQ(LuApp::total_flops(1200), 2.0 * 1200.0 * 1200.0 * 1200.0 / 3.0);
}

}  // namespace
}  // namespace ms::apps
