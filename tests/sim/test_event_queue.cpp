#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ms::sim {
namespace {

TEST(Engine, StartsIdleAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(30), [&] { order.push_back(3); });
  e.schedule_at(SimTime::micros(10), [&] { order.push_back(1); });
  e.schedule_at(SimTime::micros(20), [&] { order.push_back(2); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime::micros(30));
}

TEST(Engine, SameTimestampIsFifoStable) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(SimTime::micros(5), [&order, i] { order.push_back(i); });
  }
  e.run_until_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  int hits = 0;
  e.schedule_at(SimTime::micros(1), [&] {
    ++hits;
    e.schedule_after(SimTime::micros(1), [&] { ++hits; });
  });
  e.run_until_idle();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(e.now(), SimTime::micros(2));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(SimTime::micros(10), [] {});
  e.run_until_idle();
  EXPECT_THROW(e.schedule_at(SimTime::micros(5), [] {}), std::invalid_argument);
}

TEST(Engine, EmptyCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(SimTime::micros(1), Engine::Callback{}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(1), [&] { order.push_back(1); });
  e.schedule_at(SimTime::micros(5), [&] { order.push_back(5); });
  e.run_until(SimTime::micros(3));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.pending(), 1u);
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Engine, RunUntilAdvancesClockWhenDrained) {
  Engine e;
  e.run_until(SimTime::micros(100));
  EXPECT_EQ(e.now(), SimTime::micros(100));
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int hits = 0;
  e.schedule_at(SimTime::micros(1), [&] { ++hits; });
  e.schedule_at(SimTime::micros(2), [&] { ++hits; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsFiredEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(SimTime::micros(i + 1), [] {});
  e.run_until_idle();
  EXPECT_EQ(e.events_fired(), 7u);
}

TEST(Engine, ResetClearsEverything) {
  Engine e;
  e.schedule_at(SimTime::micros(50), [] {});
  e.reset();
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_EQ(e.events_fired(), 0u);
  // Scheduling at t=0 works again after reset.
  int hits = 0;
  e.schedule_at(SimTime::zero(), [&] { ++hits; });
  e.run_until_idle();
  EXPECT_EQ(hits, 1);
}

TEST(Engine, InterleavedScheduleAndRunKeepsOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(10), [&] { order.push_back(10); });
  e.run_until(SimTime::micros(4));
  e.schedule_at(SimTime::micros(6), [&] { order.push_back(6); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{6, 10}));
}

// Regression guard for the pooled representation: recycled callback slots
// must not disturb the same-timestamp FIFO contract. Fire a batch (slots go
// back to the free list), then schedule a same-timestamp batch through the
// recycled slots — insertion order must still win.
TEST(Engine, SameTimestampFifoSurvivesSlotRecycling) {
  Engine e;
  std::vector<int> order;
  for (int round = 0; round < 5; ++round) {
    order.clear();
    const SimTime when = e.now() + SimTime::micros(1);
    for (int i = 0; i < 40; ++i) {  // spans more than one slot chunk
      e.schedule_at(when, [&order, i] { order.push_back(i); });
    }
    e.run_until_idle();
    ASSERT_EQ(order.size(), 40u);
    for (int i = 0; i < 40; ++i) {
      ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "round " << round;
    }
  }
}

// reset() with events still pending must release their pooled slots: the
// engine stays usable and the FIFO/time ordering is intact afterwards.
TEST(Engine, ResetMidFlightReleasesPooledSlots) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(SimTime::micros(i + 50), [&order, i] { order.push_back(i); });
  }
  e.run_until(SimTime::micros(52));  // fire a few, leave the rest pending
  EXPECT_FALSE(e.idle());
  e.reset();
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.now(), SimTime::zero());

  order.clear();
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(SimTime::micros(100 - i), [&order, i] { order.push_back(i); });
  }
  e.run_until_idle();
  ASSERT_EQ(order.size(), 100u);
  // Scheduled with descending timestamps, so they fire in reverse order.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], 99 - i);
  }
}

// A callback scheduling same-timestamp work while firing (the dispatching()
// window streams use for inline starts) still runs strictly after every
// event that was already queued for that instant.
TEST(Engine, SameTimestampWorkScheduledWhileDispatchingRunsLast) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(5), [&] {
    order.push_back(0);
    EXPECT_TRUE(e.dispatching());
    e.schedule_at(SimTime::micros(5), [&] { order.push_back(9); });
  });
  e.schedule_at(SimTime::micros(5), [&] { order.push_back(1); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9}));
  EXPECT_FALSE(e.dispatching());
}

}  // namespace
}  // namespace ms::sim
