#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ms::sim {
namespace {

TEST(Engine, StartsIdleAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(30), [&] { order.push_back(3); });
  e.schedule_at(SimTime::micros(10), [&] { order.push_back(1); });
  e.schedule_at(SimTime::micros(20), [&] { order.push_back(2); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime::micros(30));
}

TEST(Engine, SameTimestampIsFifoStable) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(SimTime::micros(5), [&order, i] { order.push_back(i); });
  }
  e.run_until_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  int hits = 0;
  e.schedule_at(SimTime::micros(1), [&] {
    ++hits;
    e.schedule_after(SimTime::micros(1), [&] { ++hits; });
  });
  e.run_until_idle();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(e.now(), SimTime::micros(2));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(SimTime::micros(10), [] {});
  e.run_until_idle();
  EXPECT_THROW(e.schedule_at(SimTime::micros(5), [] {}), std::invalid_argument);
}

TEST(Engine, EmptyCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(SimTime::micros(1), Engine::Callback{}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(1), [&] { order.push_back(1); });
  e.schedule_at(SimTime::micros(5), [&] { order.push_back(5); });
  e.run_until(SimTime::micros(3));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.pending(), 1u);
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Engine, RunUntilAdvancesClockWhenDrained) {
  Engine e;
  e.run_until(SimTime::micros(100));
  EXPECT_EQ(e.now(), SimTime::micros(100));
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int hits = 0;
  e.schedule_at(SimTime::micros(1), [&] { ++hits; });
  e.schedule_at(SimTime::micros(2), [&] { ++hits; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsFiredEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(SimTime::micros(i + 1), [] {});
  e.run_until_idle();
  EXPECT_EQ(e.events_fired(), 7u);
}

TEST(Engine, ResetClearsEverything) {
  Engine e;
  e.schedule_at(SimTime::micros(50), [] {});
  e.reset();
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_EQ(e.events_fired(), 0u);
  // Scheduling at t=0 works again after reset.
  int hits = 0;
  e.schedule_at(SimTime::zero(), [&] { ++hits; });
  e.run_until_idle();
  EXPECT_EQ(hits, 1);
}

TEST(Engine, InterleavedScheduleAndRunKeepsOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::micros(10), [&] { order.push_back(10); });
  e.run_until(SimTime::micros(4));
  e.schedule_at(SimTime::micros(6), [&] { order.push_back(6); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{6, 10}));
}

}  // namespace
}  // namespace ms::sim
