// Property sweeps over the cost model: invariants that must hold for every
// kernel kind and every partition geometry, so calibration changes cannot
// silently produce nonsense (negative durations, superlinear scaling, free
// work).

#include <gtest/gtest.h>

#include <tuple>

#include "sim/cost_model.hpp"

namespace ms::sim {
namespace {

SimConfig cfg() { return SimConfig::phi_31sp(); }

const KernelKind kAllKinds[] = {KernelKind::Generic,      KernelKind::Streaming,
                                KernelKind::Gemm,         KernelKind::CholeskyTask,
                                KernelKind::Stencil,      KernelKind::Reduction};

class KindPartitionSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KindPartitionSweep, DurationsArePositiveAndFinite) {
  const auto [kind_idx, partitions] = GetParam();
  CostModel m(cfg());
  PartitionTable table(cfg().device, partitions);
  KernelWork w;
  w.kind = kAllKinds[kind_idx];
  w.flops = 1e8;
  w.elems = 1e6;
  for (int p = 0; p < partitions; ++p) {
    const SimTime d = m.kernel_duration(w, table.view(p));
    EXPECT_GT(d, SimTime::zero());
    EXPECT_LT(d, SimTime::seconds(100.0));
  }
}

TEST_P(KindPartitionSweep, HalfTheWorkIsNeverSlower) {
  const auto [kind_idx, partitions] = GetParam();
  CostModel m(cfg());
  PartitionTable table(cfg().device, partitions);
  KernelWork full;
  full.kind = kAllKinds[kind_idx];
  full.flops = 2e8;
  full.elems = 2e6;
  KernelWork half = full;
  half.flops /= 2.0;
  half.elems /= 2.0;
  EXPECT_LE(m.compute_duration(half, table.view(0)), m.compute_duration(full, table.view(0)));
}

TEST_P(KindPartitionSweep, PerfectScalingIsAnUpperBound) {
  // Splitting work over P partitions can at best divide the compute time by
  // P (the ramps and contention only hurt): P x quarter-device duration of
  // work/P >= whole-device duration of the full work.
  const auto [kind_idx, partitions] = GetParam();
  if (partitions == 1) return;
  CostModel m(cfg());
  PartitionTable table(cfg().device, partitions);
  KernelWork full;
  full.kind = kAllKinds[kind_idx];
  full.flops = 1e10;
  full.elems = 1e8;
  KernelWork slice = full;
  slice.flops /= partitions;
  slice.elems /= partitions;
  const SimTime whole = m.compute_duration(full, PartitionTable::whole_device(cfg().device));
  const SimTime sliced = m.compute_duration(slice, table.view(0));
  EXPECT_GE(sliced * 1.0001, whole / static_cast<double>(partitions));
}

INSTANTIATE_TEST_SUITE_P(Grid, KindPartitionSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                                            ::testing::Values(1, 2, 4, 7, 13, 28, 56)));

TEST(CostSweeps, LaunchOverheadIsMonotoneInPartitions) {
  CostModel m(cfg());
  SimTime prev = SimTime::zero();
  for (const int p : {1, 2, 4, 8, 16, 32, 56}) {
    PartitionTable t(cfg().device, p);
    const SimTime launch = m.launch_overhead(t.view(0));
    EXPECT_GE(launch, prev);
    prev = launch;
  }
}

TEST(CostSweeps, AllocPerThreadIsMonotoneInPartitionWidth) {
  CostModel m(cfg());
  KernelWork w;
  w.temp_alloc_bytes = 4096;
  w.temp_alloc_per_thread = true;
  SimTime prev = SimTime::max();
  for (const int p : {1, 2, 4, 8, 16, 32, 56}) {
    PartitionTable t(cfg().device, p);
    const SimTime alloc = m.alloc_overhead(w, t.view(0));
    EXPECT_LE(alloc, prev);  // narrower partitions allocate cheaper
    prev = alloc;
  }
}

TEST(CostSweeps, EffectiveGflopsNeverExceedsConfiguredCeiling) {
  CostModel m(cfg());
  const double ceiling = cfg().device.peak_gflops() * cfg().efficiency.max_flop_efficiency;
  for (double flops = 1e6; flops <= 1e13; flops *= 10.0) {
    KernelWork w;
    w.kind = KernelKind::Gemm;
    w.flops = flops;
    EXPECT_LE(m.effective_gflops(w, PartitionTable::whole_device(cfg().device)), ceiling * 1.001)
        << flops;
  }
}

}  // namespace
}  // namespace ms::sim
