#include <gtest/gtest.h>

#include "rt/tuner.hpp"
#include "sim/partition.hpp"
#include "sim/sim_config.hpp"

namespace ms::sim {
namespace {

TEST(DevicePresets, Phi31spX2HasTwoCards) {
  const auto c = SimConfig::phi_31sp_x2();
  EXPECT_EQ(c.num_devices, 2);
  EXPECT_EQ(c.device.cores, 57);
}

TEST(DevicePresets, Phi7120pSpec) {
  const auto c = SimConfig::phi_7120p();
  EXPECT_EQ(c.device.cores, 61);
  EXPECT_EQ(c.device.usable_cores(), 60);
  EXPECT_EQ(c.device.usable_threads(), 240);
  EXPECT_GT(c.device.peak_gflops(), SimConfig::phi_31sp().device.peak_gflops());
  EXPECT_GT(c.link.bandwidth_gib_s, SimConfig::phi_31sp().link.bandwidth_gib_s);
  EXPECT_NO_THROW(c.validate());
}

TEST(DevicePresets, DivisorSetFollowsTheDevice) {
  const auto set_31sp = rt::Tuner::partition_candidates(SimConfig::phi_31sp().device);
  const auto set_7120 = rt::Tuner::partition_candidates(SimConfig::phi_7120p().device);
  // 7 divides 56 but not 60; 5 divides 60 but not 56.
  EXPECT_NE(std::find(set_31sp.begin(), set_31sp.end(), 7), set_31sp.end());
  EXPECT_EQ(std::find(set_7120.begin(), set_7120.end(), 7), set_7120.end());
  EXPECT_EQ(std::find(set_31sp.begin(), set_31sp.end(), 5), set_31sp.end());
  EXPECT_NE(std::find(set_7120.begin(), set_7120.end(), 5), set_7120.end());
}

TEST(DevicePresets, CoreAlignmentMovesWithTheDevice) {
  // P = 5 splits cores on the 31SP (224/5) but aligns on the 7120P (240/5 = 48 = 12 cores).
  PartitionTable on_31sp(SimConfig::phi_31sp().device, 5);
  PartitionTable on_7120(SimConfig::phi_7120p().device, 5);
  EXPECT_FALSE(on_31sp.core_aligned());
  EXPECT_TRUE(on_7120.core_aligned());

  PartitionTable p7_31sp(SimConfig::phi_31sp().device, 7);
  PartitionTable p7_7120(SimConfig::phi_7120p().device, 7);
  EXPECT_TRUE(p7_31sp.core_aligned());
  EXPECT_FALSE(p7_7120.core_aligned());
}

}  // namespace
}  // namespace ms::sim
