#include "sim/sim_time.hpp"

#include <gtest/gtest.h>

namespace ms::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_DOUBLE_EQ(t.micros(), 0.0);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, UnitConversionsRoundTrip) {
  const SimTime t = SimTime::millis(2.5);
  EXPECT_DOUBLE_EQ(t.micros(), 2500.0);
  EXPECT_DOUBLE_EQ(t.millis(), 2.5);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0025);
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::micros(1e6));
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime a = SimTime::micros(10);
  const SimTime b = SimTime::micros(4);
  EXPECT_EQ(a + b, SimTime::micros(14));
  EXPECT_EQ(a - b, SimTime::micros(6));
  EXPECT_EQ(a * 2.0, SimTime::micros(20));
  EXPECT_EQ(3.0 * b, SimTime::micros(12));
  EXPECT_EQ(a / 2.0, SimTime::micros(5));
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::micros(1);
  t += SimTime::micros(2);
  EXPECT_EQ(t, SimTime::micros(3));
  t -= SimTime::micros(1);
  EXPECT_EQ(t, SimTime::micros(2));
}

TEST(SimTime, MinMaxHelpers) {
  const SimTime a = SimTime::micros(1);
  const SimTime b = SimTime::micros(2);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, a), a);
}

TEST(SimTime, MaxSentinelDominatesEverything) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e12));
}

}  // namespace
}  // namespace ms::sim
