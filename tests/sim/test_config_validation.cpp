#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sim_config.hpp"

namespace ms::sim {
namespace {

struct Mutation {
  std::string name;
  std::function<void(SimConfig&)> apply;
};

class InvalidConfigSweep : public ::testing::TestWithParam<Mutation> {};

TEST_P(InvalidConfigSweep, IsRejected) {
  SimConfig cfg = SimConfig::phi_31sp();
  GetParam().apply(cfg);
  EXPECT_THROW(cfg.validate(), std::invalid_argument) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Fields, InvalidConfigSweep,
    ::testing::Values(
        Mutation{"zero_cores", [](SimConfig& c) { c.device.cores = 0; }},
        Mutation{"negative_cores", [](SimConfig& c) { c.device.cores = -3; }},
        Mutation{"negative_reserved", [](SimConfig& c) { c.device.reserved_cores = -1; }},
        Mutation{"all_cores_reserved", [](SimConfig& c) { c.device.reserved_cores = c.device.cores; }},
        Mutation{"zero_threads_per_core", [](SimConfig& c) { c.device.threads_per_core = 0; }},
        Mutation{"zero_clock", [](SimConfig& c) { c.device.clock_ghz = 0.0; }},
        Mutation{"negative_flops_per_cycle",
                 [](SimConfig& c) { c.device.dp_flops_per_cycle_per_core = -1.0; }},
        Mutation{"zero_memory", [](SimConfig& c) { c.device.memory_bytes = 0; }},
        Mutation{"zero_bandwidth", [](SimConfig& c) { c.link.bandwidth_gib_s = 0.0; }},
        Mutation{"negative_latency",
                 [](SimConfig& c) { c.link.per_transfer_latency = SimTime::micros(-1.0); }},
        Mutation{"zero_elem_rate", [](SimConfig& c) { c.efficiency.elems_per_thread_us = 0.0; }},
        Mutation{"efficiency_over_one",
                 [](SimConfig& c) { c.efficiency.max_flop_efficiency = 1.01; }},
        Mutation{"efficiency_zero", [](SimConfig& c) { c.efficiency.max_flop_efficiency = 0.0; }},
        Mutation{"negative_ramp",
                 [](SimConfig& c) { c.efficiency.ramp_elems_per_thread = -1.0; }},
        Mutation{"negative_split_penalty",
                 [](SimConfig& c) { c.efficiency.split_core_penalty = -0.1; }},
        Mutation{"locality_bonus_one",
                 [](SimConfig& c) { c.efficiency.stencil_locality_bonus = 1.0; }},
        Mutation{"zero_devices", [](SimConfig& c) { c.num_devices = 0; }}),
    [](const ::testing::TestParamInfo<Mutation>& info) { return info.param.name; });

TEST(ConfigValidation, AllPresetsAreValid) {
  EXPECT_NO_THROW(SimConfig::phi_31sp().validate());
  EXPECT_NO_THROW(SimConfig::phi_31sp_x2().validate());
  EXPECT_NO_THROW(SimConfig::phi_7120p().validate());
}

TEST(ConfigValidation, BoundaryValuesAreAccepted) {
  SimConfig c = SimConfig::phi_31sp();
  c.efficiency.max_flop_efficiency = 1.0;  // inclusive upper bound
  c.efficiency.split_core_penalty = 0.0;
  c.efficiency.stencil_locality_bonus = 0.0;
  c.link.per_transfer_latency = SimTime::zero();
  c.device.reserved_cores = 0;
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace ms::sim
