// Proves the engine's zero-allocation steady state: once the slot pool and
// heap have grown to a workload's high-water mark, schedule/fire cycles
// perform no heap allocation at all (the BM_EngineScheduleFire acceptance
// criterion, checked here with a counting global operator new so it cannot
// silently regress).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hpp"

namespace {

std::atomic<std::size_t> g_allocs{0};

}  // namespace

// Counting wrappers for the whole test binary; only the deltas sampled
// inside the tests below matter.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ms::sim {
namespace {

TEST(EngineAlloc, SteadyStateScheduleFireAllocatesNothing) {
  Engine e;

  // Warm up: grow the slot pool and heap storage to this workload's
  // high-water mark (64 simultaneously pending events).
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      e.schedule_after(SimTime::micros(i + 1), [] {});
    }
    e.run_until_idle();
  }

  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      e.schedule_after(SimTime::micros(i + 1), [] {});
    }
    e.run_until_idle();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "steady-state schedule/fire must not allocate";
}

TEST(EngineAlloc, SteadyStateSurvivesReset) {
  Engine e;
  for (int i = 0; i < 32; ++i) {
    e.schedule_after(SimTime::micros(i + 1), [] {});
  }
  e.run_until_idle();
  e.reset();

  // Capacity is retained across reset(): the next burst of the same size
  // must not allocate either.
  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i) {
      e.schedule_after(SimTime::micros(i + 1), [] {});
    }
    e.run_until_idle();
    e.reset();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace ms::sim
