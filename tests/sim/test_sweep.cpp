#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "rt/context.hpp"
#include "sim/sim_config.hpp"

namespace ms::sim {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 257;  // deliberately not a multiple of workers
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, ZeroJobsIsANoop) {
  ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "no job should run"; });
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(ThreadPool, NestedRunFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.run(4, [&](std::size_t) {
    ThreadPool::shared().run(4, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPool, NestedRunFromCallingThreadDoesNotDeadlock) {
  // Both levels on the *shared* pool. The calling thread helps drain the
  // outer batch, so outer jobs can land on it; a nested run() from such a
  // job re-enters the same pool while the caller still holds its run mutex.
  // Regression test for the self-deadlock this used to cause — nested runs
  // must execute inline on the batch-bound thread instead.
  std::atomic<int> inner{0};
  parallel_for(3, [&](std::size_t) {
    parallel_for(5, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 15);
}

TEST(ParallelMap, NestedMapsKeepOrderedResults) {
  // A sweep job that itself runs a parallel kernel is the common nested
  // shape; results of both levels must stay ordered by index.
  const auto out = parallel_map<std::size_t>(6, [](std::size_t i) {
    const auto sq = parallel_map<std::size_t>(4, [=](std::size_t j) { return i * 10 + j; });
    std::size_t sum = 0;
    for (const std::size_t v : sq) sum += v;
    return sum;  // 4*10i + 0+1+2+3
  });
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 40 * i + 6);
}

TEST(ParallelMap, ResultsAreOrderedByIndex) {
  const auto out = parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SerialOptionBypassesThePool) {
  SweepOptions serial;
  serial.threads = 1;
  const auto out = parallel_map<int>(
      8, [](std::size_t i) { return static_cast<int>(i) + 1; }, serial);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

/// One simulated streamed pipeline; returns the virtual host time. Each call
/// builds a private Context, which is the contract that makes sweep points
/// independent.
double simulate_point(int partitions, int tasks) {
  rt::Context ctx(SimConfig::phi_31sp());
  ctx.set_tracing(false);
  ctx.setup(partitions);
  const auto buf = ctx.create_virtual_buffer(static_cast<std::size_t>(tasks) << 12);
  for (int t = 0; t < tasks; ++t) {
    auto& s = ctx.stream(t % partitions);
    const std::size_t off = static_cast<std::size_t>(t) << 12;
    s.enqueue_h2d(buf, off, 1 << 12);
    KernelWork w;
    w.kind = KernelKind::Streaming;
    w.elems = 5e4 * (1.0 + 0.1 * t);
    s.enqueue_kernel({"k", w, {}});
    s.enqueue_d2h(buf, off, 1 << 12);
  }
  ctx.synchronize();
  return ctx.host_time().micros();
}

// The tentpole guarantee: a parallel sweep returns bit-identical virtual
// times to a serial one, point for point. The simulation itself is
// deterministic, and parallel_map's by-index ordering keeps the association.
TEST(ParallelSweep, VirtualTimesIdenticalSerialVsParallel) {
  const std::vector<int> partitions{1, 2, 3, 4, 7, 8, 14};
  const int tasks = 24;

  SweepOptions serial;
  serial.threads = 1;
  const auto serial_times = parallel_map<double>(
      partitions.size(), [&](std::size_t i) { return simulate_point(partitions[i], tasks); },
      serial);

  const auto parallel_times = parallel_map<double>(
      partitions.size(), [&](std::size_t i) { return simulate_point(partitions[i], tasks); });

  ASSERT_EQ(serial_times.size(), parallel_times.size());
  for (std::size_t i = 0; i < serial_times.size(); ++i) {
    // Bit-identical, not approximately equal: same config, same event order,
    // same floating-point operations in the same order.
    EXPECT_EQ(serial_times[i], parallel_times[i]) << "P=" << partitions[i];
  }
}

}  // namespace
}  // namespace ms::sim
