#include "sim/device_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <stdexcept>

namespace ms::sim {
namespace {

TEST(DeviceMemory, AllocateReturnsDistinctHandles) {
  DeviceMemory mem(1 << 20);
  const auto a = mem.allocate(100);
  const auto b = mem.allocate(100);
  EXPECT_NE(a, b);
  EXPECT_NE(a, DeviceMemory::null_handle);
}

TEST(DeviceMemory, StorageIsZeroInitialized) {
  DeviceMemory mem(1 << 20);
  const auto h = mem.allocate(64);
  const std::byte* p = mem.data(h);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(p[i], std::byte{0});
}

TEST(DeviceMemory, DataIsWritableAndStable) {
  DeviceMemory mem(1 << 20);
  const auto h = mem.allocate(16);
  std::memset(mem.data(h), 0xAB, 16);
  // Another allocation must not disturb the first block's contents.
  const auto h2 = mem.allocate(1024);
  (void)h2;
  EXPECT_EQ(static_cast<unsigned char>(mem.data(h)[7]), 0xAB);
}

TEST(DeviceMemory, TracksUsage) {
  DeviceMemory mem(4096);
  const auto a = mem.allocate(1000);
  EXPECT_EQ(mem.bytes_in_use(), 1000u);
  EXPECT_EQ(mem.live_allocations(), 1u);
  mem.free(a);
  EXPECT_EQ(mem.bytes_in_use(), 0u);
  EXPECT_EQ(mem.live_allocations(), 0u);
  EXPECT_EQ(mem.total_allocations(), 1u);
}

TEST(DeviceMemory, OutOfMemoryThrowsBadAlloc) {
  DeviceMemory mem(1024);
  mem.allocate(1000);
  EXPECT_THROW(mem.allocate(100), std::bad_alloc);
  // Exactly filling the card is fine.
  EXPECT_NO_THROW(mem.allocate(24));
}

TEST(DeviceMemory, FreeingReleasesCapacity) {
  DeviceMemory mem(1024);
  const auto a = mem.allocate(1024);
  mem.free(a);
  EXPECT_NO_THROW(mem.allocate(1024));
}

TEST(DeviceMemory, DoubleFreeThrows) {
  DeviceMemory mem(1024);
  const auto a = mem.allocate(10);
  mem.free(a);
  EXPECT_THROW(mem.free(a), std::invalid_argument);
}

TEST(DeviceMemory, UnknownHandleThrowsEverywhere) {
  DeviceMemory mem(1024);
  EXPECT_THROW((void)mem.data(42), std::invalid_argument);
  EXPECT_THROW((void)mem.size(42), std::invalid_argument);
  EXPECT_THROW(mem.free(42), std::invalid_argument);
  EXPECT_FALSE(mem.valid(42));
}

TEST(DeviceMemory, SizeReportsAllocationSize) {
  DeviceMemory mem(1 << 20);
  const auto h = mem.allocate(12345);
  EXPECT_EQ(mem.size(h), 12345u);
  EXPECT_TRUE(mem.valid(h));
}

TEST(DeviceMemory, ZeroByteAllocationIsLegal) {
  DeviceMemory mem(16);
  const auto h = mem.allocate(0);
  EXPECT_TRUE(mem.valid(h));
  EXPECT_EQ(mem.size(h), 0u);
}

}  // namespace
}  // namespace ms::sim
