#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>

namespace ms::sim {
namespace {

CoprocessorSpec phi() { return SimConfig::phi_31sp().device; }

TEST(Partition, Phi31spSpecSanity) {
  const auto s = phi();
  EXPECT_EQ(s.cores, 57);
  EXPECT_EQ(s.usable_cores(), 56);
  EXPECT_EQ(s.usable_threads(), 224);
  EXPECT_NEAR(s.peak_gflops(), 985.6, 0.1);
}

TEST(Partition, SinglePartitionIsWholeDevice) {
  PartitionTable t(phi(), 1);
  ASSERT_EQ(t.partitions(), 1);
  EXPECT_EQ(t.view(0).threads(), 224);
  EXPECT_EQ(t.view(0).cores_spanned, 56);
  EXPECT_DOUBLE_EQ(t.view(0).split_fraction, 0.0);
}

TEST(Partition, WholeDeviceHelperMatchesSinglePartition) {
  const auto v = PartitionTable::whole_device(phi());
  EXPECT_EQ(v.threads(), 224);
  EXPECT_EQ(v.cores_spanned, 56);
  EXPECT_EQ(v.total_partitions, 1);
}

TEST(Partition, FourPartitionsAreCoreAligned) {
  PartitionTable t(phi(), 4);
  EXPECT_TRUE(t.core_aligned());
  for (const auto& v : t.views()) {
    EXPECT_EQ(v.threads(), 56);
    EXPECT_EQ(v.cores_spanned, 14);
    EXPECT_DOUBLE_EQ(v.split_fraction, 0.0);
  }
}

TEST(Partition, DivisorSetIsExactlyCoreAligned) {
  // The paper's recommended set {2,4,7,8,14,28,56}: P divides 56.
  const std::set<int> divisors{1, 2, 4, 7, 8, 14, 28, 56};
  for (int p = 1; p <= 56; ++p) {
    PartitionTable t(phi(), p);
    EXPECT_EQ(t.core_aligned(), divisors.contains(p)) << "P=" << p;
  }
}

TEST(Partition, RecommendedCountsMatchPaperSet) {
  const auto rec = PartitionTable::recommended_partition_counts(phi());
  EXPECT_EQ(rec, (std::vector<int>{2, 4, 7, 8, 14, 28, 56}));
}

TEST(Partition, ThreePartitionsSplitCores) {
  // 224/3 = 75,75,74: boundaries at 75 and 150 are mid-core.
  PartitionTable t(phi(), 3);
  EXPECT_FALSE(t.core_aligned());
  EXPECT_GT(t.view(0).split_fraction, 0.0);
  EXPECT_GT(t.view(1).split_fraction, 0.0);
  EXPECT_GT(t.view(2).split_fraction, 0.0);
}

TEST(Partition, LastPartitionBoundaryAtDeviceEndIsNotSplit) {
  // P=224: every partition is one thread; all interior boundaries are
  // mid-core, so everything is split except... nothing: each 1-thread
  // partition shares its core with 3 others.
  PartitionTable t(phi(), 224);
  for (const auto& v : t.views()) {
    EXPECT_EQ(v.threads(), 1);
    EXPECT_EQ(v.cores_spanned, 1);
  }
  // The very last thread of the device ends on a core boundary, but its core
  // is still shared with the three preceding partitions.
  EXPECT_GT(t.view(0).split_fraction, 0.0);
}

TEST(Partition, InvalidCountsThrow) {
  EXPECT_THROW(PartitionTable(phi(), 0), std::invalid_argument);
  EXPECT_THROW(PartitionTable(phi(), -1), std::invalid_argument);
  EXPECT_THROW(PartitionTable(phi(), 225), std::invalid_argument);
}

// Properties over every legal partition count.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, CoversAllThreadsExactlyOnce) {
  const int p = GetParam();
  PartitionTable t(phi(), p);
  int cursor = 0;
  int total = 0;
  for (const auto& v : t.views()) {
    EXPECT_EQ(v.thread_begin, cursor);
    EXPECT_GT(v.threads(), 0);
    cursor = v.thread_end;
    total += v.threads();
  }
  EXPECT_EQ(total, 224);
  EXPECT_EQ(cursor, 224);
}

TEST_P(PartitionSweep, SizesDifferByAtMostOne) {
  const int p = GetParam();
  PartitionTable t(phi(), p);
  int lo = 1 << 30;
  int hi = 0;
  for (const auto& v : t.views()) {
    lo = std::min(lo, v.threads());
    hi = std::max(hi, v.threads());
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(PartitionSweep, SplitFractionInUnitInterval) {
  const int p = GetParam();
  PartitionTable t(phi(), p);
  for (const auto& v : t.views()) {
    EXPECT_GE(v.split_fraction, 0.0);
    EXPECT_LE(v.split_fraction, 1.0);
    EXPECT_GE(v.cores_spanned, 1);
    EXPECT_EQ(v.total_partitions, p);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCounts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 14, 16, 28, 33, 37, 56, 100,
                                           128, 223, 224));

TEST(Partition, SplitLogicOnTinyDevice) {
  // 2 cores x 4 threads: P=2 aligns (4+4); P=3 gives 3,3,2 with splits.
  CoprocessorSpec tiny;
  tiny.cores = 3;
  tiny.reserved_cores = 1;
  tiny.threads_per_core = 4;
  PartitionTable aligned(tiny, 2);
  EXPECT_TRUE(aligned.core_aligned());
  PartitionTable split(tiny, 3);
  EXPECT_FALSE(split.core_aligned());
  // Middle partition [3,6) straddles cores 0 and 1 entirely.
  EXPECT_DOUBLE_EQ(split.view(1).split_fraction, 1.0);
}

}  // namespace
}  // namespace ms::sim
