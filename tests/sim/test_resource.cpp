#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ms::sim {
namespace {

TEST(FifoResource, GrantsImmediatelyWhenIdle) {
  FifoResource r("dma");
  const auto g = r.reserve(SimTime::micros(5), SimTime::micros(10));
  EXPECT_EQ(g.start, SimTime::micros(5));
  EXPECT_EQ(g.end, SimTime::micros(15));
  EXPECT_EQ(g.wait, SimTime::zero());
}

TEST(FifoResource, QueuesBehindPriorGrant) {
  FifoResource r("dma");
  r.reserve(SimTime::zero(), SimTime::micros(10));
  const auto g = r.reserve(SimTime::micros(2), SimTime::micros(5));
  EXPECT_EQ(g.start, SimTime::micros(10));
  EXPECT_EQ(g.end, SimTime::micros(15));
  EXPECT_EQ(g.wait, SimTime::micros(8));
}

TEST(FifoResource, IdleGapIsNotBackfilled) {
  // A request that becomes ready late leaves the earlier idle gap unused —
  // FIFO, no reordering.
  FifoResource r("dma");
  r.reserve(SimTime::micros(100), SimTime::micros(10));
  const auto g = r.reserve(SimTime::zero(), SimTime::micros(1));
  EXPECT_EQ(g.start, SimTime::micros(110));
}

TEST(FifoResource, ZeroDurationGrant) {
  FifoResource r("x");
  const auto g = r.reserve(SimTime::micros(3), SimTime::zero());
  EXPECT_EQ(g.start, g.end);
}

TEST(FifoResource, NegativeDurationThrows) {
  FifoResource r("x");
  EXPECT_THROW(r.reserve(SimTime::zero(), SimTime::micros(-1)), std::invalid_argument);
}

TEST(FifoResource, AccumulatesStats) {
  FifoResource r("x");
  r.reserve(SimTime::zero(), SimTime::micros(10));
  r.reserve(SimTime::zero(), SimTime::micros(10));
  EXPECT_EQ(r.grants(), 2u);
  EXPECT_EQ(r.total_busy(), SimTime::micros(20));
  EXPECT_EQ(r.total_wait(), SimTime::micros(10));
  EXPECT_EQ(r.busy_until(), SimTime::micros(20));
}

TEST(FifoResource, UtilizationIsBusyOverHorizon) {
  FifoResource r("x");
  r.reserve(SimTime::zero(), SimTime::micros(25));
  EXPECT_DOUBLE_EQ(r.utilization(SimTime::micros(100)), 0.25);
  EXPECT_DOUBLE_EQ(r.utilization(SimTime::micros(25)), 1.0);
  EXPECT_DOUBLE_EQ(r.utilization(SimTime::zero()), 0.0);
}

TEST(FifoResource, ResetRestoresPristineState) {
  FifoResource r("x");
  r.reserve(SimTime::zero(), SimTime::micros(10));
  r.reset();
  EXPECT_EQ(r.grants(), 0u);
  EXPECT_EQ(r.busy_until(), SimTime::zero());
  const auto g = r.reserve(SimTime::zero(), SimTime::micros(1));
  EXPECT_EQ(g.start, SimTime::zero());
}

TEST(MultiSlotResource, TwoSlotsRunConcurrently) {
  MultiSlotResource r("duplex", 2);
  const auto a = r.reserve(SimTime::zero(), SimTime::micros(10));
  const auto b = r.reserve(SimTime::zero(), SimTime::micros(10));
  EXPECT_EQ(a.start, SimTime::zero());
  EXPECT_EQ(b.start, SimTime::zero());
  const auto c = r.reserve(SimTime::zero(), SimTime::micros(10));
  EXPECT_EQ(c.start, SimTime::micros(10));  // both slots busy
}

TEST(MultiSlotResource, PicksEarliestFreeSlot) {
  MultiSlotResource r("pool", 2);
  r.reserve(SimTime::zero(), SimTime::micros(10));
  r.reserve(SimTime::zero(), SimTime::micros(4));
  const auto g = r.reserve(SimTime::zero(), SimTime::micros(1));
  EXPECT_EQ(g.start, SimTime::micros(4));
}

TEST(MultiSlotResource, ZeroSlotsThrows) {
  EXPECT_THROW(MultiSlotResource("bad", 0), std::invalid_argument);
}

TEST(MultiSlotResource, BusyUntilIsLatestSlot) {
  MultiSlotResource r("pool", 2);
  r.reserve(SimTime::zero(), SimTime::micros(3));
  r.reserve(SimTime::zero(), SimTime::micros(9));
  EXPECT_EQ(r.busy_until(), SimTime::micros(9));
}

// Property sweep: under FIFO, grant start times are non-decreasing when all
// requests are ready at their issue time, and total busy equals the sum of
// durations regardless of arrival pattern.
class FifoPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FifoPropertyTest, StartsMonotoneAndBusyAdds) {
  const int n = GetParam();
  FifoResource r("x");
  SimTime prev_start = SimTime::zero();
  SimTime expected_busy = SimTime::zero();
  for (int i = 0; i < n; ++i) {
    const SimTime ready = SimTime::micros((i * 7) % 13);
    const SimTime dur = SimTime::micros(1 + (i * 3) % 5);
    const auto g = r.reserve(ready, dur);
    EXPECT_GE(g.start, prev_start);
    EXPECT_GE(g.start, ready);
    EXPECT_EQ(g.end - g.start, dur);
    prev_start = g.start;
    expected_busy += dur;
  }
  EXPECT_EQ(r.total_busy(), expected_busy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FifoPropertyTest, ::testing::Values(1, 2, 8, 64, 512));

}  // namespace
}  // namespace ms::sim
