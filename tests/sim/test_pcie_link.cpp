#include "sim/pcie_link.hpp"

#include <gtest/gtest.h>

namespace ms::sim {
namespace {

constexpr std::size_t kMiB = 1u << 20;

LinkSpec paper_link() { return SimConfig::phi_31sp().link; }

TEST(PcieLink, TransferDurationIsLatencyPlusBytesOverBandwidth) {
  PcieLink link(paper_link(), "mic0");
  const SimTime d = link.transfer_duration(kMiB);
  // 1 MiB at 6.4 GiB/s = 152.6 us, + 12 us setup.
  EXPECT_NEAR(d.micros(), 12.0 + 1.0 / 6.4 / 1024.0 * 1e6, 1.0);
}

TEST(PcieLink, CalibrationMatchesFig5) {
  // Fig. 5: 16 blocks of 1 MB one-way ~= 2.5 ms; 32 blocks ~= 5.2 ms.
  PcieLink link(paper_link(), "mic0");
  const double block_ms = link.transfer_duration(kMiB).millis();
  EXPECT_NEAR(16.0 * block_ms, 2.6, 0.3);
  EXPECT_NEAR(32.0 * block_ms, 5.2, 0.6);
}

TEST(PcieLink, SerializesBothDirections) {
  PcieLink link(paper_link(), "mic0");
  const auto a = link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB);
  const auto b = link.reserve(Direction::DeviceToHost, SimTime::zero(), kMiB);
  EXPECT_EQ(b.start, a.end);  // the paper's finding #1
}

TEST(PcieLink, DuplexModeOverlapsDirections) {
  LinkSpec spec = paper_link();
  spec.full_duplex = true;
  PcieLink link(spec, "mic0");
  const auto a = link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB);
  const auto b = link.reserve(Direction::DeviceToHost, SimTime::zero(), kMiB);
  EXPECT_EQ(a.start, SimTime::zero());
  EXPECT_EQ(b.start, SimTime::zero());
}

TEST(PcieLink, DuplexStillSerializesSameDirection) {
  LinkSpec spec = paper_link();
  spec.full_duplex = true;
  PcieLink link(spec, "mic0");
  const auto a = link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB);
  const auto b = link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB);
  EXPECT_EQ(b.start, a.end);
}

TEST(PcieLink, TracksPerDirectionStats) {
  PcieLink link(paper_link(), "mic0");
  link.reserve(Direction::HostToDevice, SimTime::zero(), 100);
  link.reserve(Direction::HostToDevice, SimTime::zero(), 200);
  link.reserve(Direction::DeviceToHost, SimTime::zero(), 300);
  EXPECT_EQ(link.transfers(Direction::HostToDevice), 2u);
  EXPECT_EQ(link.transfers(Direction::DeviceToHost), 1u);
  EXPECT_EQ(link.bytes_moved(Direction::HostToDevice), 300u);
  EXPECT_EQ(link.bytes_moved(Direction::DeviceToHost), 300u);
}

TEST(PcieLink, ResetClearsState) {
  PcieLink link(paper_link(), "mic0");
  link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB);
  link.reset();
  EXPECT_EQ(link.transfers(Direction::HostToDevice), 0u);
  EXPECT_EQ(link.busy_until(), SimTime::zero());
}

TEST(PcieLink, DirectionNames) {
  EXPECT_STREQ(to_string(Direction::HostToDevice), "H2D");
  EXPECT_STREQ(to_string(Direction::DeviceToHost), "D2H");
}

// Fig. 5 property at the link level: with a serialized engine, total time
// for (hd, dh) blocks depends only on hd + dh.
class SerializedPatternTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SerializedPatternTest, TotalDependsOnlyOnSum) {
  const auto [hd, dh] = GetParam();
  PcieLink link(paper_link(), "mic0");
  SimTime end = SimTime::zero();
  for (int i = 0; i < hd; ++i) end = link.reserve(Direction::HostToDevice, SimTime::zero(), kMiB).end;
  for (int i = 0; i < dh; ++i) end = link.reserve(Direction::DeviceToHost, SimTime::zero(), kMiB).end;
  const double per_block = link.transfer_duration(kMiB).micros();
  EXPECT_NEAR(end.micros(), (hd + dh) * per_block, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Patterns, SerializedPatternTest,
                         ::testing::Values(std::pair{16, 0}, std::pair{0, 16}, std::pair{8, 8},
                                           std::pair{4, 12}, std::pair{16, 16}, std::pair{1, 1}));

}  // namespace
}  // namespace ms::sim
