#include "sim/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ms::sim {
namespace {

TEST(Platform, DefaultHasOneDevice) {
  Platform p(SimConfig::phi_31sp());
  EXPECT_EQ(p.device_count(), 1);
  EXPECT_EQ(p.device(0).id(), 0);
  EXPECT_EQ(p.now(), SimTime::zero());
}

TEST(Platform, TwoMicConfigHasTwoIndependentLinks) {
  Platform p(SimConfig::phi_31sp_x2());
  ASSERT_EQ(p.device_count(), 2);
  // Links are independent resources: saturating one leaves the other free.
  p.device(0).link().reserve(Direction::HostToDevice, SimTime::zero(), 1 << 20);
  const auto g = p.device(1).link().reserve(Direction::HostToDevice, SimTime::zero(), 1 << 20);
  EXPECT_EQ(g.start, SimTime::zero());
}

TEST(Platform, DevicesStartWithOnePartition) {
  Platform p(SimConfig::phi_31sp());
  EXPECT_EQ(p.device(0).partitions(), 1);
  EXPECT_EQ(p.device(0).partition(0).threads(), 224);
}

TEST(Platform, RepartitionRebuildsResources) {
  Platform p(SimConfig::phi_31sp());
  p.device(0).set_partitions(4);
  EXPECT_EQ(p.device(0).partitions(), 4);
  // Each partition is its own FIFO server.
  p.device(0).partition_resource(0).reserve(SimTime::zero(), SimTime::micros(10));
  const auto g = p.device(0).partition_resource(1).reserve(SimTime::zero(), SimTime::micros(10));
  EXPECT_EQ(g.start, SimTime::zero());
}

TEST(Platform, DeviceMemorySizedFromSpec) {
  SimConfig cfg = SimConfig::phi_31sp();
  cfg.device.memory_bytes = 4096;
  Platform p(cfg);
  EXPECT_EQ(p.device(0).memory().capacity(), 4096u);
}

TEST(Platform, InvalidConfigThrows) {
  SimConfig cfg = SimConfig::phi_31sp();
  cfg.num_devices = 0;
  EXPECT_THROW(Platform{cfg}, std::invalid_argument);
}

TEST(Platform, CostModelReflectsConfig) {
  Platform p(SimConfig::phi_31sp());
  EXPECT_DOUBLE_EQ(p.cost().config().link.bandwidth_gib_s, 6.4);
}

}  // namespace
}  // namespace ms::sim
