// Unit tests for the conservative parallel coordinator: mailbox semantics,
// window/micro-step protocol, sealing, and determinism across thread counts.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/par_engine.hpp"

namespace ms::sim {
namespace {

TEST(Mailbox, FifoOrderAndCounts) {
  Mailbox box(4);
  std::vector<int> fired;
  box.push(SimTime::micros(1), [&] { fired.push_back(1); });
  box.push(SimTime::micros(2), [&] { fired.push_back(2); });
  EXPECT_EQ(box.size(), 2u);
  Mailbox::Msg m;
  ASSERT_TRUE(box.pop(m));
  EXPECT_EQ(m.when, SimTime::micros(1));
  m.fn();
  ASSERT_TRUE(box.pop(m));
  m.fn();
  EXPECT_FALSE(box.pop(m));
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Mailbox, OverflowThrows) {
  Mailbox box(2);
  box.push(SimTime::zero(), [] {});
  box.push(SimTime::zero(), [] {});
  EXPECT_THROW(box.push(SimTime::zero(), [] {}), std::overflow_error);
}

TEST(Mailbox, SealedPushThrows) {
  Mailbox box(4);
  box.seal();
  EXPECT_THROW(box.push(SimTime::zero(), [] {}), std::logic_error);
  box.unseal();
  EXPECT_NO_THROW(box.push(SimTime::zero(), [] {}));
}

TEST(Engine, RunBeforeStopsStrictlyBelowBound) {
  Engine e;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    e.schedule_at(SimTime::micros(t), [&fired, t] { fired.push_back(t); });
  }
  e.run_before(SimTime::micros(3));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // The clock rests at the last fired event, never at the bound.
  EXPECT_EQ(e.now(), SimTime::micros(2));
  e.run_until_idle();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, SealedDeliverThrows) {
  Engine e;
  e.set_delivery_open(false);
  EXPECT_THROW(e.deliver(SimTime::micros(1), [] {}), std::logic_error);
  e.set_delivery_open(true);
  bool ran = false;
  e.deliver(SimTime::micros(1), [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), SimTime::micros(1));
  EXPECT_FALSE(e.dispatching());
}

TEST(Engine, DeliverNeverRewindsClock) {
  Engine e;
  e.schedule_at(SimTime::micros(5), [] {});
  e.run_until_idle();
  e.deliver(SimTime::micros(1), [] {});
  EXPECT_EQ(e.now(), SimTime::micros(5));
}

TEST(Engine, BumpSeqFloorIsMonotonic) {
  Engine e;
  e.bump_seq_floor(10);
  EXPECT_EQ(e.next_seq(), 10u);
  e.bump_seq_floor(4);
  EXPECT_EQ(e.next_seq(), 10u);
}

/// Two independent LPs and an unbounded lookahead: everything drains in one
/// window, no micro-steps.
TEST(ParEngine, IndependentLpsDrainInOneWindow) {
  Engine host, dev;
  std::vector<Engine*> lps{&host, &dev};
  ParEngine par(lps, /*threads=*/2);
  int fired = 0;
  for (int i = 1; i <= 3; ++i) {
    host.schedule_at(SimTime::micros(i), [&] { ++fired; });
    dev.schedule_at(SimTime::micros(i * 10), [&] { ++fired; });
  }
  par.run_until_idle();
  EXPECT_EQ(fired, 6);
  EXPECT_TRUE(par.idle());
  EXPECT_EQ(par.windows(), 1u);
  EXPECT_EQ(par.microsteps(), 0u);
  EXPECT_EQ(par.now(), SimTime::micros(30));
}

/// A finite bound forces micro-steps up to the bound, then a window.
TEST(ParEngine, BoundForcesMicroSteps) {
  Engine host, dev;
  std::vector<Engine*> lps{&host, &dev};
  ParEngine par(lps, 2);
  // Bound of 2us: the event at 1 is provably below it and drains in a
  // window; the event at exactly 2 is not protected and must fire as a
  // coordinator micro-step. Once it clears, the bound lifts and a final
  // window drains the tail.
  int fired = 0;
  bool crossed = false;
  par.set_bound_fn([&]() -> SimTime {
    return crossed ? SimTime::max() : SimTime::micros(2);
  });
  host.schedule_at(SimTime::micros(1), [&] { ++fired; });
  dev.schedule_at(SimTime::micros(2), [&] {
    ++fired;
    crossed = true;
  });
  host.schedule_at(SimTime::micros(5), [&] { ++fired; });
  dev.schedule_at(SimTime::micros(7), [&] { ++fired; });
  par.run_until_idle();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(par.microsteps(), 1u);
  EXPECT_GE(par.windows(), 2u);
}

/// Cross-LP post delivers inline with deliver() semantics, and a post during
/// a window (sealed box) throws.
TEST(ParEngine, PostDeliversInlineInTimestampOrder) {
  Engine host, dev;
  std::vector<Engine*> lps{&host, &dev};
  ParEngine par(lps, 1);
  std::vector<int> order;
  par.post(1, SimTime::micros(3), [&] { order.push_back(1); });
  par.post(1, SimTime::micros(4), [&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(par.posts(), 2u);
  EXPECT_EQ(dev.now(), SimTime::micros(4));

  par.mailbox(1).seal();
  EXPECT_THROW(par.post(1, SimTime::micros(5), [] {}), std::logic_error);
}

/// Barrier hook fires after windows and at the end of the drain; sequence
/// floors are synced so later events keep one global FIFO order.
TEST(ParEngine, BarrierSyncsSeqFloors) {
  Engine host, dev;
  std::vector<Engine*> lps{&host, &dev};
  ParEngine par(lps, 2);
  int barriers = 0;
  par.set_barrier_fn([&] { ++barriers; });
  for (int i = 0; i < 8; ++i) {
    host.schedule_at(SimTime::micros(i + 1), [] {});
  }
  dev.schedule_at(SimTime::micros(1), [] {});
  par.run_until_idle();
  EXPECT_GE(barriers, 1);
  EXPECT_EQ(host.next_seq(), dev.next_seq());
}

/// The same event program produces identical clocks and firing order for 1,
/// 2, and unbounded worker threads.
TEST(ParEngine, DeterministicAcrossThreadCounts) {
  const auto run = [](int threads) {
    Engine host, d0, d1;
    std::vector<Engine*> lps{&host, &d0, &d1};
    ParEngine par(lps, threads);
    std::vector<std::pair<int, double>> log;  // only inspected per-LP below
    for (int i = 1; i <= 16; ++i) {
      d0.schedule_at(SimTime::micros(i * 3.0), [] {});
      d1.schedule_at(SimTime::micros(i * 5.0), [] {});
      host.schedule_at(SimTime::micros(i * 7.0), [] {});
    }
    par.run_until_idle();
    return std::vector<double>{host.now().micros(), d0.now().micros(), d1.now().micros()};
  };
  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ParEngine, StepFiresGlobalMinimum) {
  Engine host, dev;
  std::vector<Engine*> lps{&host, &dev};
  ParEngine par(lps, 1);
  std::vector<int> order;
  host.schedule_at(SimTime::micros(2), [&] { order.push_back(0); });
  dev.schedule_at(SimTime::micros(1), [&] { order.push_back(1); });
  ASSERT_TRUE(par.step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  ASSERT_TRUE(par.step());
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
  EXPECT_FALSE(par.step());
  EXPECT_EQ(par.microsteps(), 2u);
}

}  // namespace
}  // namespace ms::sim
