#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ms::sim {
namespace {

SimConfig cfg() { return SimConfig::phi_31sp(); }

PartitionView whole() { return PartitionTable::whole_device(cfg().device); }

KernelWork saxpy(double elems) {
  KernelWork w;
  w.kind = KernelKind::Streaming;
  w.elems = elems;
  return w;
}

KernelWork gemm(double flops) {
  KernelWork w;
  w.kind = KernelKind::Gemm;
  w.flops = flops;
  return w;
}

TEST(CostModel, HBenchCalibrationMatchesFig6) {
  // 4M elements x 40 iterations on the whole device ~= the ~5 ms where the
  // kernel line crosses the data line in Fig. 6.
  CostModel m(cfg());
  const SimTime d = m.compute_duration(saxpy(4.0 * (1 << 20) * 40), whole());
  EXPECT_NEAR(d.millis(), 5.2, 0.6);
}

TEST(CostModel, BigGemmApproachesConfiguredEfficiency) {
  CostModel m(cfg());
  const double flops = 2.0 * 6000.0 * 6000.0 * 6000.0;
  const KernelWork w = gemm(flops);
  const double gf = m.effective_gflops(w, whole());
  const double peak = cfg().device.peak_gflops();
  EXPECT_GT(gf, 0.5 * peak * cfg().efficiency.max_flop_efficiency);
  EXPECT_LT(gf, peak * cfg().efficiency.max_flop_efficiency * 1.01);
}

TEST(CostModel, ComputeScalesInverselyWithThreads) {
  CostModel m(cfg());
  PartitionTable t(cfg().device, 4);
  const KernelWork w = saxpy(1e8);
  const SimTime quarter = m.compute_duration(w, t.view(0));
  const SimTime full = m.compute_duration(w, whole());
  // 56 threads vs 224: about 4x slower (modulo the work-per-thread ramp,
  // which *favours* fewer threads slightly).
  EXPECT_NEAR(quarter / full, 4.0, 0.25);
}

TEST(CostModel, MoreWorkNeverTakesLessTime) {
  CostModel m(cfg());
  SimTime prev = SimTime::zero();
  for (double e = 1e3; e <= 1e9; e *= 10.0) {
    const SimTime d = m.compute_duration(saxpy(e), whole());
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(CostModel, SmallWorkLosesEfficiency) {
  CostModel m(cfg());
  // Throughput (elems per us) should be worse for tiny launches.
  const double small_tp = 1e4 / m.compute_duration(saxpy(1e4), whole()).micros();
  const double big_tp = 1e8 / m.compute_duration(saxpy(1e8), whole()).micros();
  EXPECT_LT(small_tp, 0.5 * big_tp);
}

TEST(CostModel, SplitCorePartitionIsSlower) {
  CostModel m(cfg());
  PartitionTable aligned(cfg().device, 4);   // 56 threads, aligned
  PartitionTable split(cfg().device, 5);     // 45/45/45/45/44, split cores
  const KernelWork w = gemm(1e9);
  const double aligned_rate = w.flops / m.compute_duration(w, aligned.view(0)).micros() /
                              aligned.view(0).threads();
  const double split_rate =
      w.flops / m.compute_duration(w, split.view(1)).micros() / split.view(1).threads();
  EXPECT_LT(split_rate, aligned_rate);
}

TEST(CostModel, StencilLocalityBonusAppliesOnlyToSmallPartitions) {
  CostModel m(cfg());
  KernelWork w;
  w.kind = KernelKind::Stencil;
  w.elems = 1e6;

  PartitionTable small(cfg().device, 28);  // 8 threads = 2 cores -> bonus
  PartitionTable large(cfg().device, 4);   // 14 cores -> no bonus
  KernelWork generic = w;
  generic.kind = KernelKind::Generic;

  const double stencil_speedup = m.compute_duration(generic, small.view(0)) /
                                 m.compute_duration(w, small.view(0));
  EXPECT_NEAR(stencil_speedup, 1.0 / (1.0 - cfg().efficiency.stencil_locality_bonus), 1e-9);

  const double no_speedup =
      m.compute_duration(generic, large.view(0)) / m.compute_duration(w, large.view(0));
  EXPECT_DOUBLE_EQ(no_speedup, 1.0);
}

TEST(CostModel, StencilBonusNotAppliedToWholeDevice) {
  // The baseline (1 partition) never gets the locality bonus even on a tiny
  // hypothetical device, because total_partitions == 1.
  CostModel m(cfg());
  KernelWork w;
  w.kind = KernelKind::Stencil;
  w.elems = 1e6;
  PartitionView v = whole();
  v.cores_spanned = 2;  // artificially small
  KernelWork g = w;
  g.kind = KernelKind::Generic;
  EXPECT_EQ(m.compute_duration(w, v), m.compute_duration(g, v));
}

TEST(CostModel, LaunchOverheadGrowsWithPartitionCount) {
  CostModel m(cfg());
  PartitionTable p4(cfg().device, 4);
  PartitionTable p56(cfg().device, 56);
  EXPECT_LT(m.launch_overhead(p4.view(0)), m.launch_overhead(p56.view(0)));
}

TEST(CostModel, AllocOverheadGrowsWithThreadsAndBytes) {
  CostModel m(cfg());
  PartitionTable p4(cfg().device, 4);
  PartitionTable p56(cfg().device, 56);
  KernelWork per_thread;
  per_thread.temp_alloc_bytes = 1024;
  per_thread.temp_alloc_per_thread = true;
  // The Kmeans mechanism: thread-private allocation on a fat partition
  // costs more.
  EXPECT_GT(m.alloc_overhead(per_thread, p4.view(0)), m.alloc_overhead(per_thread, p56.view(0)));
  KernelWork block;
  block.temp_alloc_bytes = 100.0 * (1 << 20);
  EXPECT_GT(m.alloc_overhead(block, p4.view(0)), m.alloc_overhead(per_thread, p56.view(0)));
  // Block scratch is partition-size independent.
  EXPECT_EQ(m.alloc_overhead(block, p4.view(0)), m.alloc_overhead(block, p56.view(0)));
  KernelWork none;
  EXPECT_EQ(m.alloc_overhead(none, p4.view(0)), SimTime::zero());
}

TEST(CostModel, KernelDurationIsSumOfParts) {
  CostModel m(cfg());
  KernelWork w = saxpy(1e6);
  w.temp_alloc_bytes = 4096;
  w.temp_alloc_per_thread = true;
  const auto part = whole();
  EXPECT_EQ(m.kernel_duration(w, part),
            m.launch_overhead(part) + m.alloc_overhead(w, part) + m.compute_duration(w, part));
}

TEST(CostModel, SyncOverheadScalesWithStreamsAndCrossDevice) {
  CostModel m(cfg());
  EXPECT_LT(m.sync_overhead(1, false), m.sync_overhead(16, false));
  EXPECT_LT(m.sync_overhead(4, false), m.sync_overhead(4, true));
}

TEST(CostModel, ZeroThreadPartitionThrows) {
  CostModel m(cfg());
  PartitionView v;
  v.thread_begin = 0;
  v.thread_end = 0;
  EXPECT_THROW((void)m.compute_duration(saxpy(10), v), std::invalid_argument);
}

TEST(CostModel, InvalidConfigRejectedAtConstruction) {
  SimConfig bad = cfg();
  bad.efficiency.max_flop_efficiency = 1.5;
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
  bad = cfg();
  bad.link.bandwidth_gib_s = -1.0;
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
  bad = cfg();
  bad.device.reserved_cores = 57;
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST(CostModel, KernelKindNames) {
  EXPECT_STREQ(to_string(KernelKind::Gemm), "gemm");
  EXPECT_STREQ(to_string(KernelKind::Streaming), "streaming");
  EXPECT_STREQ(to_string(KernelKind::Stencil), "stencil");
  EXPECT_STREQ(to_string(KernelKind::Reduction), "reduction");
  EXPECT_STREQ(to_string(KernelKind::CholeskyTask), "cholesky-task");
  EXPECT_STREQ(to_string(KernelKind::Generic), "generic");
}

// Property: across every partition count, compute duration of a fixed total
// work, summed over partitions running concurrently (i.e. the max over
// partitions when work is split evenly), is minimized near core-aligned
// configurations — weaker form: aligned P is never slower than P+1.
class AlignedVsSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlignedVsSplitSweep, AlignedBeatsNeighborPerThread) {
  const int p = GetParam();  // aligned count
  CostModel m(cfg());
  PartitionTable aligned(cfg().device, p);
  PartitionTable split(cfg().device, p + 1);
  const KernelWork w = gemm(1e10);
  // Per-thread throughput comparison normalizes away the thread count.
  const auto rate = [&](const PartitionView& v) {
    return w.flops / m.compute_duration(w, v).micros() / v.threads();
  };
  EXPECT_GE(rate(aligned.view(0)) * 1.0001, rate(split.view(0)));
}

INSTANTIATE_TEST_SUITE_P(AlignedCounts, AlignedVsSplitSweep, ::testing::Values(2, 4, 7, 8, 14, 28));

}  // namespace
}  // namespace ms::sim
