// Labeled metric families: registration semantics, child identity, snapshot
// ordering, and the Prometheus/JSON label rendering. The compiled-graph
// executor is the first adopter (ms_rt_graph_replays_total{graph="..."}).

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace ms::telemetry {
namespace {

class MetricFamilies : public ::testing::Test {
protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (MS_TELEMETRY=OFF)";
    set_enabled(true);
  }
  void TearDown() override { set_enabled(false); }

  static Registry& registry() { return Registry::instance(); }
};

TEST_F(MetricFamilies, WithReturnsAStableChildPerLabelValue) {
  auto& fam = registry().counter_family("ms_test_fam_stable_total", "family child identity", "app");
  Counter& a1 = fam.with("mm");
  Counter& a2 = fam.with("mm");
  Counter& b = fam.with("nn");
  EXPECT_EQ(&a1, &a2) << "same label value must resolve to the same child";
  EXPECT_NE(&a1, &b);

  a1.add(3);
  b.add(1);
  EXPECT_EQ(a2.value(), 3u);
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricFamilies, ReRegisteringSameFamilyIsIdempotent) {
  auto& a = registry().counter_family("ms_test_fam_dedupe_total", "first", "app");
  auto& b = registry().counter_family("ms_test_fam_dedupe_total", "help ignored", "app");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.label_key(), "app");
}

TEST_F(MetricFamilies, LabelKeyAndKindClashesThrow) {
  registry().counter_family("ms_test_fam_clash_total", "as counter family", "app");
  // Same name, different label key.
  EXPECT_THROW(registry().counter_family("ms_test_fam_clash_total", "other key", "graph"),
               std::logic_error);
  // Same name, different family kind.
  EXPECT_THROW(registry().histogram_family("ms_test_fam_clash_total", "as histogram", "app"),
               std::logic_error);
  // Family name colliding with a plain metric, in either direction.
  registry().counter("ms_test_fam_plain_total", "plain counter");
  EXPECT_THROW(registry().counter_family("ms_test_fam_plain_total", "now a family", "app"),
               std::logic_error);
  registry().counter_family("ms_test_fam_first_total", "family first", "app");
  EXPECT_THROW(registry().counter("ms_test_fam_first_total", "now plain"), std::logic_error);
}

TEST_F(MetricFamilies, SnapshotCarriesLabelsSortedByValue) {
  auto& fam = registry().counter_family("ms_test_fam_snap_total", "snapshot ordering", "app");
  fam.with("zeta").add(1);
  fam.with("alpha").add(2);

  const auto snap = registry().snapshot();
  std::vector<std::pair<std::string, std::string>> seen;
  for (const auto& m : snap.metrics) {
    if (m.name == "ms_test_fam_snap_total") seen.emplace_back(m.label_value, m.label_key);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "alpha");
  EXPECT_EQ(seen[1].first, "zeta");
  EXPECT_EQ(seen[0].second, "app");
}

TEST_F(MetricFamilies, PrometheusRendersLabelSelectors) {
  auto& fam = registry().counter_family("ms_test_fam_prom_total", "prom rendering", "app");
  fam.with("mm").add(7);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("ms_test_fam_prom_total{app=\"mm\"} 7"), std::string::npos) << out;
  // HELP/TYPE headers appear once for the family, not once per child.
  fam.with("nn").add(1);
  std::ostringstream os2;
  write_prometheus(os2, registry().snapshot());
  const std::string out2 = os2.str();
  const auto first = out2.find("# HELP ms_test_fam_prom_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out2.find("# HELP ms_test_fam_prom_total", first + 1), std::string::npos);
}

TEST_F(MetricFamilies, PrometheusMergesHistogramLabelsWithLe) {
  auto& fam =
      registry().histogram_family("ms_test_fam_hist_ns", "labeled histogram rendering", "graph");
  fam.with("pipeline").observe(5);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string out = os.str();
  // Bucket selectors must combine the family label and `le` in one set.
  EXPECT_NE(out.find("ms_test_fam_hist_ns_bucket{graph=\"pipeline\",le=\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("ms_test_fam_hist_ns_count{graph=\"pipeline\"} 1"), std::string::npos) << out;
}

TEST_F(MetricFamilies, JsonKeysIncludeTheSelector) {
  auto& fam = registry().counter_family("ms_test_fam_json_total", "json rendering", "app");
  fam.with("srad").add(2);

  std::ostringstream os;
  write_json(os, registry().snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("ms_test_fam_json_total{app=\\\"srad\\\"}"), std::string::npos) << out;
}

TEST_F(MetricFamilies, DisabledChildrenRecordNothing) {
  auto& fam = registry().counter_family("ms_test_fam_disabled_total", "gating", "app");
  set_enabled(false);
  fam.with("mm").add(100);
  set_enabled(true);
  EXPECT_EQ(fam.with("mm").value(), 0u);
}

// Stub-flavour sanity: in MS_TELEMETRY=OFF builds the family API still links
// and returns usable no-op children (this is what keeps the compiled-graph
// hot path free of #ifdefs). Runs in both flavours.
TEST(MetricFamiliesStub, FamilyApiIsCallableInEitherFlavour) {
  auto& fam = Registry::instance().counter_family("ms_test_fam_any_total", "always links", "app");
  EXPECT_NO_THROW(fam.with("x").add(1));
  auto& hfam = Registry::instance().histogram_family("ms_test_fam_any_ns", "always links", "app");
  EXPECT_NO_THROW(hfam.with("x").observe(42));
}

}  // namespace
}  // namespace ms::telemetry
