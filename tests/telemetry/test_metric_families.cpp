// Labeled metric families: registration semantics, child identity, snapshot
// ordering, and the Prometheus/JSON label rendering. The compiled-graph
// executor is the first adopter (ms_rt_graph_replays_total{graph="..."}).

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace ms::telemetry {
namespace {

class MetricFamilies : public ::testing::Test {
protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (MS_TELEMETRY=OFF)";
    set_enabled(true);
  }
  void TearDown() override { set_enabled(false); }

  static Registry& registry() { return Registry::instance(); }
};

TEST_F(MetricFamilies, WithReturnsAStableChildPerLabelValue) {
  auto& fam = registry().counter_family("ms_test_fam_stable_total", "family child identity", "app");
  Counter& a1 = fam.with("mm");
  Counter& a2 = fam.with("mm");
  Counter& b = fam.with("nn");
  EXPECT_EQ(&a1, &a2) << "same label value must resolve to the same child";
  EXPECT_NE(&a1, &b);

  a1.add(3);
  b.add(1);
  EXPECT_EQ(a2.value(), 3u);
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricFamilies, ReRegisteringSameFamilyIsIdempotent) {
  auto& a = registry().counter_family("ms_test_fam_dedupe_total", "first", "app");
  auto& b = registry().counter_family("ms_test_fam_dedupe_total", "help ignored", "app");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.label_key(), "app");
}

TEST_F(MetricFamilies, LabelKeyAndKindClashesThrow) {
  registry().counter_family("ms_test_fam_clash_total", "as counter family", "app");
  // Same name, different label key.
  EXPECT_THROW(registry().counter_family("ms_test_fam_clash_total", "other key", "graph"),
               std::logic_error);
  // Same name, different family kind.
  EXPECT_THROW(registry().histogram_family("ms_test_fam_clash_total", "as histogram", "app"),
               std::logic_error);
  // Family name colliding with a plain metric, in either direction.
  registry().counter("ms_test_fam_plain_total", "plain counter");
  EXPECT_THROW(registry().counter_family("ms_test_fam_plain_total", "now a family", "app"),
               std::logic_error);
  registry().counter_family("ms_test_fam_first_total", "family first", "app");
  EXPECT_THROW(registry().counter("ms_test_fam_first_total", "now plain"), std::logic_error);
}

TEST_F(MetricFamilies, SnapshotCarriesLabelsSortedByValue) {
  auto& fam = registry().counter_family("ms_test_fam_snap_total", "snapshot ordering", "app");
  fam.with("zeta").add(1);
  fam.with("alpha").add(2);

  const auto snap = registry().snapshot();
  std::vector<std::pair<std::string, std::string>> seen;
  for (const auto& m : snap.metrics) {
    if (m.name == "ms_test_fam_snap_total") seen.emplace_back(m.label_value, m.label_key);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "alpha");
  EXPECT_EQ(seen[1].first, "zeta");
  EXPECT_EQ(seen[0].second, "app");
}

TEST_F(MetricFamilies, PrometheusRendersLabelSelectors) {
  auto& fam = registry().counter_family("ms_test_fam_prom_total", "prom rendering", "app");
  fam.with("mm").add(7);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("ms_test_fam_prom_total{app=\"mm\"} 7"), std::string::npos) << out;
  // HELP/TYPE headers appear once for the family, not once per child.
  fam.with("nn").add(1);
  std::ostringstream os2;
  write_prometheus(os2, registry().snapshot());
  const std::string out2 = os2.str();
  const auto first = out2.find("# HELP ms_test_fam_prom_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out2.find("# HELP ms_test_fam_prom_total", first + 1), std::string::npos);
}

TEST_F(MetricFamilies, PrometheusMergesHistogramLabelsWithLe) {
  auto& fam =
      registry().histogram_family("ms_test_fam_hist_ns", "labeled histogram rendering", "graph");
  fam.with("pipeline").observe(5);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string out = os.str();
  // Bucket selectors must combine the family label and `le` in one set.
  EXPECT_NE(out.find("ms_test_fam_hist_ns_bucket{graph=\"pipeline\",le=\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("ms_test_fam_hist_ns_count{graph=\"pipeline\"} 1"), std::string::npos) << out;
}

TEST_F(MetricFamilies, JsonKeysIncludeTheSelector) {
  auto& fam = registry().counter_family("ms_test_fam_json_total", "json rendering", "app");
  fam.with("srad").add(2);

  std::ostringstream os;
  write_json(os, registry().snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("ms_test_fam_json_total{app=\\\"srad\\\"}"), std::string::npos) << out;
}

TEST_F(MetricFamilies, GaugeFamilyMirrorsCounterFamilySemantics) {
  auto& fam = registry().gauge_family("ms_test_fam_gauge", "labeled gauge", "lp");
  Gauge& a1 = fam.with("0");
  Gauge& a2 = fam.with("0");
  Gauge& b = fam.with("1");
  EXPECT_EQ(&a1, &a2);
  EXPECT_NE(&a1, &b);
  EXPECT_EQ(fam.label_key(), "lp");

  a1.set(17);
  b.set(4);
  EXPECT_EQ(a2.value(), 17u);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("ms_test_fam_gauge{lp=\"0\"} 17"), std::string::npos) << out;
  EXPECT_NE(out.find("# TYPE ms_test_fam_gauge gauge"), std::string::npos) << out;
}

TEST_F(MetricFamilies, GaugeFamilyKindClashesThrow) {
  registry().gauge_family("ms_test_fam_gkind", "as gauge family", "lp");
  EXPECT_THROW(registry().counter_family("ms_test_fam_gkind", "as counter", "lp"),
               std::logic_error);
  EXPECT_THROW(registry().gauge_family("ms_test_fam_gkind", "other key", "device"),
               std::logic_error);
  registry().counter_family("ms_test_fam_ckind_total", "as counter family", "app");
  EXPECT_THROW(registry().gauge_family("ms_test_fam_ckind_total", "as gauge", "app"),
               std::logic_error);
}

TEST_F(MetricFamilies, TrackReturnsTheRenderedSeriesName) {
  auto& fam = registry().gauge_family("ms_test_fam_track", "track identity", "lp");
  const char* t1 = fam.track("3");
  const char* t2 = fam.track("3");
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1, t2) << "same label value must resolve to the same interned name";
  EXPECT_EQ(std::string(t1), "ms_test_fam_track{lp=\"3\"}");

  // The interned name is byte-identical to the Prometheus exposition series,
  // so counter-sample tracks and scrapes join without translation.
  fam.with("3").set(9);
  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  EXPECT_NE(os.str().find(std::string(t1) + " 9"), std::string::npos) << os.str();

  const char* c = registry()
                      .counter_family("ms_test_fam_track_total", "counter track", "app")
                      .track("mm");
  EXPECT_EQ(std::string(c), "ms_test_fam_track_total{app=\"mm\"}");
  const char* h =
      registry().histogram_family("ms_test_fam_track_ns", "histogram track", "graph").track("g");
  EXPECT_EQ(std::string(h), "ms_test_fam_track_ns{graph=\"g\"}");
}

TEST_F(MetricFamilies, TrackEscapesLabelValues) {
  auto& fam = registry().gauge_family("ms_test_fam_escape", "selector escaping", "k");
  EXPECT_EQ(std::string(fam.track("a\"b\\c\nd")), "ms_test_fam_escape{k=\"a\\\"b\\\\c\\nd\"}");
}

TEST_F(MetricFamilies, HistogramExemplarCarriesTheLatestReplayId) {
  auto& fam = registry().histogram_family("ms_test_fam_ex_ns", "exemplar rendering", "graph");
  Histogram& h = fam.with("pipeline");
  h.observe(100, /*replay_id=*/7);
  h.observe(250, /*replay_id=*/9);
  h.observe(50);  // exemplar-free observation must not clear the exemplar

  const auto snap = registry().snapshot();
  const MetricSnapshot* m = nullptr;
  for (const auto& it : snap.metrics) {
    if (it.name == "ms_test_fam_ex_ns") m = &it;
  }
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.exemplar_replay, 9u);
  EXPECT_EQ(m->histogram.exemplar_value, 250u);

  std::ostringstream prom;
  write_prometheus(prom, snap);
  EXPECT_NE(prom.str().find("le=\"+Inf\"} 3 # {replay_id=\"9\"} 250"), std::string::npos)
      << prom.str();

  std::ostringstream json;
  write_json(json, snap);
  EXPECT_NE(json.str().find("\"exemplar\": {\"replay_id\": 9, \"value\": 250}"),
            std::string::npos)
      << json.str();
}

TEST_F(MetricFamilies, DisabledChildrenRecordNothing) {
  auto& fam = registry().counter_family("ms_test_fam_disabled_total", "gating", "app");
  set_enabled(false);
  fam.with("mm").add(100);
  set_enabled(true);
  EXPECT_EQ(fam.with("mm").value(), 0u);
}

// Stub-flavour sanity: in MS_TELEMETRY=OFF builds the family API still links
// and returns usable no-op children (this is what keeps the compiled-graph
// hot path free of #ifdefs). Runs in both flavours.
TEST(MetricFamiliesStub, FamilyApiIsCallableInEitherFlavour) {
  auto& fam = Registry::instance().counter_family("ms_test_fam_any_total", "always links", "app");
  EXPECT_NO_THROW(fam.with("x").add(1));
  auto& hfam = Registry::instance().histogram_family("ms_test_fam_any_ns", "always links", "app");
  EXPECT_NO_THROW(hfam.with("x").observe(42));
}

}  // namespace
}  // namespace ms::telemetry
