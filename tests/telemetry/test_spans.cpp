#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "trace/chrome_trace.hpp"

namespace ms::telemetry {
namespace {

class Spans : public ::testing::Test {
protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (MS_TELEMETRY=OFF)";
    set_enabled(true);
    clear_spans();
  }
  void TearDown() override {
    if (kCompiledIn) {
      clear_spans();
      set_enabled(false);
    }
  }

  static std::vector<SpanRecord> spans_named(const char* name) {
    std::vector<SpanRecord> out;
    for (const SpanRecord& r : collect_spans()) {
      if (std::string(r.name) == name) out.push_back(r);
    }
    return out;
  }
};

TEST_F(Spans, ScopedSpanRecordsOnDestruction) {
  {
    const ScopedSpan s("test.spans.basic");
  }
  const auto got = spans_named("test.spans.basic");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_LE(got[0].start_ns, got[0].end_ns);
}

TEST_F(Spans, NowNsIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST_F(Spans, DisabledRecordingProducesNothing) {
  set_enabled(false);
  {
    const ScopedSpan s("test.spans.disabled");
  }
  set_enabled(true);
  EXPECT_TRUE(spans_named("test.spans.disabled").empty());
}

TEST_F(Spans, EnabledCheckedAtConstruction) {
  // The gate is sampled when the span opens; a span opened while recording
  // is on records even if recording is switched off before it closes.
  {
    const ScopedSpan s("test.spans.midflight");
    set_enabled(false);
  }
  set_enabled(true);
  EXPECT_EQ(spans_named("test.spans.midflight").size(), 1u);
}

TEST_F(Spans, ExplicitRecordSpan) {
  record_span("test.spans.explicit", 100, 250);
  const auto got = spans_named("test.spans.explicit");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].start_ns, 100u);
  EXPECT_EQ(got[0].end_ns, 250u);
  EXPECT_EQ(got[0].duration_ns(), 150u);
}

TEST_F(Spans, RingOverwritesOldest) {
  for (std::uint64_t i = 0; i < kSpanRingCapacity + 10; ++i) {
    record_span("test.spans.ring", i, i + 1);
  }
  const auto got = spans_named("test.spans.ring");
  ASSERT_EQ(got.size(), kSpanRingCapacity);
  // The oldest 10 were overwritten; the freshest record survives.
  std::uint64_t min_start = got[0].start_ns, max_start = got[0].start_ns;
  for (const auto& r : got) {
    min_start = std::min(min_start, r.start_ns);
    max_start = std::max(max_start, r.start_ns);
  }
  EXPECT_EQ(min_start, 10u);
  EXPECT_EQ(max_start, kSpanRingCapacity + 9);
}

TEST_F(Spans, ConcurrentThreadsKeepDistinctIds) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) {
        const ScopedSpan s("test.spans.mt");
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto got = spans_named("test.spans.mt");
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<std::uint32_t> ids;
  for (const auto& r : got) ids.push_back(r.thread);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(Spans, ClearSpansEmptiesEveryRing) {
  record_span("test.spans.clear", 1, 2);
  clear_spans();
  EXPECT_TRUE(spans_named("test.spans.clear").empty());
}

// -------------------------------------------------------------------------
// Host track in the combined Chrome trace export
// -------------------------------------------------------------------------

TEST_F(Spans, ChromeTraceHostTrack) {
  trace::Timeline t;
  trace::Span dev;
  dev.kind = trace::SpanKind::Kernel;
  dev.device = 0;
  dev.stream = 0;
  dev.start = sim::SimTime::micros(0);
  dev.end = sim::SimTime::micros(100);
  t.record(dev);

  std::vector<SpanRecord> host;
  host.push_back({"host.work", 0, 5'000'000, 6'500'000});
  host.push_back({"host.other", 1, 5'100'000, 5'200'000});

  std::ostringstream os;
  trace::write_chrome_trace(os, t, host);
  const std::string s = os.str();

  // Device track keeps its virtual events and gains a process name.
  EXPECT_NE(s.find("\"device 0 (virtual)\""), std::string::npos);
  // Host track: its own process, sorted above the devices, one thread row
  // per telemetry thread id, timestamps normalized to the earliest span.
  EXPECT_NE(s.find("\"host (wall-clock)\""), std::string::npos);
  EXPECT_NE(s.find(std::string("\"pid\":") + std::to_string(trace::kHostTracePid)),
            std::string::npos);
  EXPECT_NE(s.find("\"sort_index\":-1"), std::string::npos);
  EXPECT_NE(s.find("\"host thread 0\""), std::string::npos);
  EXPECT_NE(s.find("\"host thread 1\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"host.work\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"host\""), std::string::npos);
  EXPECT_NE(s.find("\"ts\":0.000"), std::string::npos);      // normalized start
  EXPECT_NE(s.find("\"dur\":1500.000"), std::string::npos);  // 1.5 ms in us
  EXPECT_NE(s.find("\"ts\":100.000"), std::string::npos);    // second span +100 us
}

TEST_F(Spans, ChromeTraceWithoutHostSpansHasNoHostTrack) {
  trace::Timeline t;
  std::ostringstream os;
  trace::write_chrome_trace(os, t, {});
  EXPECT_EQ(os.str().find("host (wall-clock)"), std::string::npos);
}

}  // namespace
}  // namespace ms::telemetry
