// ObsServer: the embedded observability endpoint. Routes, the /healthz
// readiness state machine, address parsing, and — the critical property —
// scraping /metrics over real sockets while worker threads mutate the
// registry: every response must parse as valid Prometheus text and counter
// totals must be monotone across scrapes. Runs under TSan in CI.

#include "telemetry/obs_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ms::telemetry {
namespace {

/// Minimal blocking HTTP/1.1 client: one request, read to EOF (the server
/// always answers Connection: close).
std::string http_request(int port, const std::string& target,
                         const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      method + " " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  for (std::size_t off = 0; off < req.size();) {
    const ssize_t w = ::send(fd, req.data() + off, req.size() - off, 0);
    if (w <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(w);
  }
  std::string resp;
  char buf[4096];
  for (ssize_t r = 0; (r = ::recv(fd, buf, sizeof(buf), 0)) > 0;) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return resp;
}

int status_of(const std::string& resp) {
  // "HTTP/1.1 NNN ..."
  if (resp.size() < 12) return -1;
  return std::atoi(resp.c_str() + 9);
}

std::string body_of(const std::string& resp) {
  const std::size_t at = resp.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : resp.substr(at + 4);
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_' && s[0] != ':') {
    return false;
  }
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != ':') return false;
  }
  return true;
}

/// Validate one Prometheus exposition-format body: every line is a comment
/// header or a `name[{labels}] value [# {exemplar} value]` sample whose
/// pieces parse. Returns false and points `err` at the offending line.
bool valid_prometheus(const std::string& body, std::string* err) {
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) continue;
    if (line[0] == '#') {
      *err = "unexpected comment: " + line;
      return false;
    }

    std::string sample = line;
    // OpenMetrics-style exemplar suffix: " # {k=\"v\"} value".
    if (const std::size_t ex = sample.find(" # {"); ex != std::string::npos) {
      const std::string exemplar = sample.substr(ex + 3);
      const std::size_t close = exemplar.find("} ");
      char* eend = nullptr;
      if (close == std::string::npos ||
          (std::strtod(exemplar.c_str() + close + 2, &eend), eend == nullptr || *eend != '\0')) {
        *err = "bad exemplar: " + line;
        return false;
      }
      sample.resize(ex);
    }

    std::string name = sample;
    std::string value;
    if (const std::size_t brace = sample.find('{'); brace != std::string::npos) {
      const std::size_t close = sample.find("} ", brace);
      if (close == std::string::npos) {
        *err = "unterminated label set: " + line;
        return false;
      }
      name = sample.substr(0, brace);
      value = sample.substr(close + 2);
    } else {
      const std::size_t sp = sample.rfind(' ');
      if (sp == std::string::npos) {
        *err = "no value: " + line;
        return false;
      }
      name = sample.substr(0, sp);
      value = sample.substr(sp + 1);
    }
    char* vend = nullptr;
    std::strtod(value.c_str(), &vend);
    if (!valid_metric_name(name) || vend == nullptr || *vend != '\0' || value.empty()) {
      *err = "unparseable sample: " + line;
      return false;
    }
  }
  return true;
}

/// Sum every sample of `name{...}` in an exposition body.
double series_total(const std::string& body, const std::string& name) {
  double total = 0.0;
  std::size_t at = 0;
  const std::string prefix = name + "{";
  while ((at = body.find(prefix, at)) != std::string::npos) {
    // Only count line starts (skip HELP/TYPE mentions mid-line).
    if (at != 0 && body[at - 1] != '\n') {
      at += prefix.size();
      continue;
    }
    const std::size_t close = body.find("} ", at);
    if (close == std::string::npos) break;
    total += std::strtod(body.c_str() + close + 2, nullptr);
    at = close;
  }
  return total;
}

TEST(ObsServer, BindsEphemeralPortAndReportsAddress) {
  ObsServer srv("127.0.0.1:0");
  EXPECT_GT(srv.bound_port(), 0);
  EXPECT_EQ(srv.address(), "127.0.0.1:" + std::to_string(srv.bound_port()));
  ObsServer bare(":0");  // host defaults to loopback
  EXPECT_GT(bare.bound_port(), 0);
}

TEST(ObsServer, RejectsUnparseableAddresses) {
  EXPECT_THROW(ObsServer(""), std::runtime_error);
  EXPECT_THROW(ObsServer("127.0.0.1:"), std::runtime_error);
  EXPECT_THROW(ObsServer("127.0.0.1:notaport"), std::runtime_error);
  EXPECT_THROW(ObsServer("127.0.0.1:99999"), std::runtime_error);
  EXPECT_THROW(ObsServer("not-a-host:0"), std::runtime_error);
}

TEST(ObsServer, HealthzFollowsTheReadinessStateMachine) {
  ObsServer srv(":0");
  ASSERT_EQ(srv.state(), ObsState::Starting);
  std::string resp = http_request(srv.bound_port(), "/healthz");
  EXPECT_EQ(status_of(resp), 503);
  EXPECT_EQ(body_of(resp), "starting\n");

  srv.set_state(ObsState::Serving);
  resp = http_request(srv.bound_port(), "/healthz");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_EQ(body_of(resp), "serving\n");

  srv.set_state(ObsState::Draining);
  resp = http_request(srv.bound_port(), "/healthz");
  EXPECT_EQ(status_of(resp), 503);
  EXPECT_EQ(body_of(resp), "draining\n");
}

TEST(ObsServer, RoutesAnswerAndUnknownsAreBounded) {
  ObsServer srv(":0");
  srv.set_state(ObsState::Serving);

  EXPECT_EQ(status_of(http_request(srv.bound_port(), "/metrics")), 200);
  const std::string json = http_request(srv.bound_port(), "/metrics.json");
  EXPECT_EQ(status_of(json), 200);
  EXPECT_EQ(body_of(json)[0], '{');
  const std::string spans = http_request(srv.bound_port(), "/spans");
  EXPECT_EQ(status_of(spans), 200);
  EXPECT_NE(body_of(spans).find("\"spans\""), std::string::npos);
  const std::string trace = http_request(srv.bound_port(), "/trace");
  EXPECT_EQ(status_of(trace), 200);
  EXPECT_NE(body_of(trace).find("\"traceEvents\""), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_EQ(status_of(http_request(srv.bound_port(), "/healthz?verbose=1")), 200);
  EXPECT_EQ(status_of(http_request(srv.bound_port(), "/nope")), 404);
  EXPECT_EQ(status_of(http_request(srv.bound_port(), "/metrics", "POST")), 405);
  EXPECT_GE(srv.requests_served(), 7u);
}

TEST(ObsServer, MetricsBodyIsValidPrometheusInEitherFlavour) {
  set_enabled(true);
  ObsServer srv(":0");
  srv.set_state(ObsState::Serving);
  const std::string resp = http_request(srv.bound_port(), "/metrics");
  ASSERT_EQ(status_of(resp), 200);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  std::string err;
  EXPECT_TRUE(valid_prometheus(body_of(resp), &err)) << err;
  set_enabled(false);
}

TEST(ObsServer, EnsureIsOptInAndIdempotent) {
  // Before any global server exists: no explicit address and no MS_OBS_ADDR
  // means no listener — observability stays opt-in.
  ::unsetenv("MS_OBS_ADDR");
  EXPECT_EQ(ensure_obs_server(), nullptr);
  EXPECT_EQ(obs_server(), nullptr);

  ObsServer* first = ensure_obs_server("127.0.0.1:0");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->state(), ObsState::Serving);
  EXPECT_EQ(obs_server(), first);
  // Subsequent calls (any address) return the already-running server.
  EXPECT_EQ(ensure_obs_server("127.0.0.1:0"), first);
  EXPECT_EQ(ensure_obs_server(), first);
  EXPECT_EQ(status_of(http_request(first->bound_port(), "/healthz")), 200);
}

TEST(ObsServer, ScrapeUnderMutationStaysValidAndMonotone) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (MS_TELEMETRY=OFF)";
  set_enabled(true);
  ObsServer srv(":0");
  srv.set_state(ObsState::Serving);

  auto& fam = Registry::instance().counter_family("ms_test_obs_mut_total",
                                                  "scrape-under-mutation traffic", "worker");
  auto& hfam = Registry::instance().histogram_family("ms_test_obs_mut_ns",
                                                     "scrape-under-mutation latencies", "worker");
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Counter& c = fam.with(std::to_string(w));
      Histogram& h = hfam.with(std::to_string(w));
      // Exemplar-carrying observations race the scraper's snapshot on
      // purpose — the exemplar mutex is part of what TSan checks here.
      for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
        c.add(1);
        h.observe(i % 4096, /*replay_id=*/i);
      }
    });
  }

  double last_total = -1.0;
  for (int scrape = 0; scrape < 25; ++scrape) {
    const std::string resp = http_request(srv.bound_port(), "/metrics");
    ASSERT_EQ(status_of(resp), 200) << "scrape " << scrape;
    const std::string body = body_of(resp);
    std::string err;
    ASSERT_TRUE(valid_prometheus(body, &err)) << "scrape " << scrape << ": " << err;
    const double total = series_total(body, "ms_test_obs_mut_total");
    EXPECT_GE(total, last_total) << "counter totals went backwards at scrape " << scrape;
    last_total = total;
  }
  EXPECT_GT(last_total, 0.0);

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  EXPECT_GE(srv.requests_served(), 25u);
  set_enabled(false);
}

}  // namespace
}  // namespace ms::telemetry
