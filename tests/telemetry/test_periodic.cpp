// PeriodicDumper: the background publisher writes snapshots on its interval,
// rewrites Prometheus files in place, appends JSON snapshots, and always
// leaves a final snapshot behind on stop — even for runs shorter than one
// interval. Stub builds (MS_TELEMETRY=OFF) construct no-ops.

#include "telemetry/periodic.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace ms::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Temp file that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(PeriodicDumper, InactiveWhenIntervalIsNotPositive) {
  PeriodicDumper d("somewhere.json", 0.0);
  d.stop();
  EXPECT_EQ(d.ticks(), 0u);
}

TEST(PeriodicDumper, RotationCtorLinksInEitherFlavour) {
  // The 3-arg constructor exists in both telemetry flavors; the stub build
  // constructs a no-op exactly like the 2-arg form.
  PeriodicDumper d("somewhere.json", 0.0, /*max_keep=*/4);
  d.stop();
  EXPECT_EQ(d.ticks(), 0u);
}

#if MS_TELEMETRY_ENABLED

TEST(PeriodicDumper, StopFlushesAFinalSnapshotEvenBeforeFirstTick) {
  set_enabled(true);
  TempFile out("periodic_final.json");
  {
    PeriodicDumper d(out.path, /*interval_s=*/3600.0);
    // Destructor runs well before the hour is up.
  }
  const std::string s = slurp(out.path);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
}

TEST(PeriodicDumper, JsonModeAppendsOneSnapshotPerTick) {
  set_enabled(true);
  TempFile out("periodic_stream.json");
  PeriodicDumper d(out.path, /*interval_s=*/0.01);
  while (d.ticks() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  d.stop();
  EXPECT_GE(d.ticks(), 3u);  // >=2 interval ticks + the final flush
  const std::string s = slurp(out.path);
  std::size_t snapshots = 0;
  for (std::size_t at = s.find("\"counters\""); at != std::string::npos;
       at = s.find("\"counters\"", at + 1)) {
    ++snapshots;
  }
  EXPECT_EQ(snapshots, d.ticks());
}

TEST(PeriodicDumper, JsonRotationKeepsOnlyTheNewestSnapshots) {
  set_enabled(true);
  registry().counter("periodic_rotate_total", "rotation marker counter").add();
  TempFile out("periodic_rotate.json");
  PeriodicDumper d(out.path, /*interval_s=*/0.005, /*max_keep=*/2);
  while (d.ticks() < 6) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  d.stop();
  ASSERT_GE(d.ticks(), 7u);  // >=6 interval ticks + the final flush
  const std::string s = slurp(out.path);
  // The window is capped: only the newest 2 snapshots survive, however many
  // ticks elapsed. Each snapshot carries exactly one "counters" object.
  std::size_t snapshots = 0;
  for (std::size_t at = s.find("\"counters\""); at != std::string::npos;
       at = s.find("\"counters\"", at + 1)) {
    ++snapshots;
  }
  EXPECT_EQ(snapshots, 2u);
  EXPECT_NE(s.find("periodic_rotate_total"), std::string::npos);
}

TEST(PeriodicDumper, PrometheusModeRewritesInPlace) {
  set_enabled(true);
  registry().counter("periodic_test_total", "events seen by the periodic dumper test").add();
  TempFile out("periodic.prom");
  PeriodicDumper d(out.path, /*interval_s=*/0.01);
  while (d.ticks() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  d.stop();
  const std::string s = slurp(out.path);
  // Rewritten, not appended: exactly one exposition of the counter.
  EXPECT_NE(s.find("periodic_test_total"), std::string::npos);
  EXPECT_EQ(s.find("# TYPE periodic_test_total"), s.rfind("# TYPE periodic_test_total"));
}

#endif  // MS_TELEMETRY_ENABLED

}  // namespace
}  // namespace ms::telemetry
