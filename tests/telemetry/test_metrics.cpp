#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"

namespace ms::telemetry {
namespace {

// -------------------------------------------------------------------------
// HistogramSnapshot is pure data and compiles in both build flavours.
// -------------------------------------------------------------------------

TEST(HistogramSnapshot, BucketOfIsBitWidth) {
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1023), 10u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1024), 11u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(HistogramSnapshot, BucketUpperIsInclusiveBound) {
  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(11), 2047u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(64), std::numeric_limits<std::uint64_t>::max());
  // Every value lands in a bucket whose upper bound is >= the value.
  for (std::uint64_t x : {0ull, 1ull, 7ull, 1000ull, 123456789ull}) {
    EXPECT_GE(HistogramSnapshot::bucket_upper(HistogramSnapshot::bucket_of(x)), x);
  }
}

TEST(HistogramSnapshot, QuantileOfEmptyIsZero) {
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);
  EXPECT_EQ(HistogramSnapshot{}.count(), 0u);
}

TEST(HistogramSnapshot, QuantilesWalkTheBuckets) {
  HistogramSnapshot s;
  // 90 observations of "1" and 10 of "1000": p50 sits in bucket 1,
  // p95/p99 in the bucket containing 1000 (upper bound 1023).
  s.buckets[HistogramSnapshot::bucket_of(1)] = 90;
  s.buckets[HistogramSnapshot::bucket_of(1000)] = 10;
  s.sum = 90 + 10 * 1000;
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.quantile(0.50), 1u);
  EXPECT_EQ(s.quantile(0.95), 1023u);
  EXPECT_EQ(s.quantile(0.99), 1023u);
  EXPECT_EQ(s.quantile(1.0), 1023u);
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  auto fill = [](std::uint64_t seed) {
    HistogramSnapshot s;
    for (std::uint64_t i = 0; i < 20; ++i) {
      const std::uint64_t x = (seed * 2654435761u + i * 40503u) % 100000u;
      s.buckets[HistogramSnapshot::bucket_of(x)] += 1;
      s.sum += x;
    }
    return s;
  };
  const HistogramSnapshot a = fill(1), b = fill(2), c = fill(3);

  HistogramSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);

  HistogramSnapshot cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.buckets, cba.buckets);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.sum, cba.sum);
  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
}

// -------------------------------------------------------------------------
// Live metric primitives — skipped when the library is compiled out.
// -------------------------------------------------------------------------

class Metrics : public ::testing::Test {
protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (MS_TELEMETRY=OFF)";
    set_enabled(true);
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(Metrics, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(Metrics, DisabledCounterRecordsNothing) {
  set_enabled(false);
  Counter c;
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(Metrics, CounterSumsAcrossConcurrentWriters) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) c.add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(Metrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST_F(Metrics, MaxGaugeKeepsHighWater) {
  MaxGauge m;
  m.observe(5);
  m.observe(3);
  EXPECT_EQ(m.value(), 5);
  m.observe(9);
  EXPECT_EQ(m.value(), 9);
  m.observe(9);
  EXPECT_EQ(m.value(), 9);
}

TEST_F(Metrics, MaxGaugeUnderConcurrentObservers) {
  MaxGauge m;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&m, i] {
      for (std::int64_t j = 0; j < 5000; ++j) m.observe(i * 5000 + j);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(m.value(), (kThreads - 1) * 5000 + 4999);
}

TEST_F(Metrics, HistogramObserveAndSnapshot) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(1000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.sum, 1001u);
  EXPECT_EQ(s.buckets[HistogramSnapshot::bucket_of(0)], 1u);
  EXPECT_EQ(s.buckets[HistogramSnapshot::bucket_of(1)], 1u);
  EXPECT_EQ(s.buckets[HistogramSnapshot::bucket_of(1000)], 1u);
  h.reset();
  EXPECT_EQ(h.snapshot().count(), 0u);
}

TEST_F(Metrics, ConcurrentHistogramTotalsAreExact) {
  // Per-thread sharding does not exist for histograms — the buckets are
  // relaxed atomics — so totals must be exact regardless of interleaving.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&h] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) h.observe(j % 512);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.snapshot().count(), kThreads * kPerThread);
}

// -------------------------------------------------------------------------
// Registry
// -------------------------------------------------------------------------

TEST_F(Metrics, RegistryDeduplicatesByName) {
  Counter& a = registry().counter("ms_test_dedupe_total", "dedupe test");
  Counter& b = registry().counter("ms_test_dedupe_total", "different help is ignored");
  EXPECT_EQ(&a, &b);
}

TEST_F(Metrics, RegistryRejectsKindMismatch) {
  registry().counter("ms_test_kind_clash", "registered as a counter");
  EXPECT_THROW(registry().gauge("ms_test_kind_clash", "now as a gauge"), std::logic_error);
  EXPECT_THROW(registry().histogram("ms_test_kind_clash", "now as a histogram"), std::logic_error);
}

TEST_F(Metrics, SnapshotIsNameSortedAndCarriesValues) {
  Counter& c = registry().counter("ms_test_snap_counter_total", "snapshot test counter");
  Gauge& g = registry().gauge("ms_test_snap_gauge", "snapshot test gauge");
  c.reset();
  g.reset();
  c.add(5);
  g.set(-2);

  const auto snap = registry().snapshot();
  ASSERT_GE(snap.metrics.size(), 2u);
  for (std::size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LE(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
  bool saw_counter = false, saw_gauge = false;
  for (const auto& m : snap.metrics) {
    if (m.name == "ms_test_snap_counter_total") {
      saw_counter = true;
      EXPECT_EQ(m.kind, MetricKind::Counter);
      EXPECT_EQ(m.counter, 5u);
      EXPECT_EQ(m.help, "snapshot test counter");
    }
    if (m.name == "ms_test_snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, MetricKind::Gauge);
      EXPECT_EQ(m.gauge, -2);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST_F(Metrics, ResetAllZeroesEverything) {
  Counter& c = registry().counter("ms_test_resetall_total", "reset_all test");
  Histogram& h = registry().histogram("ms_test_resetall_ns", "reset_all test histogram");
  c.add(3);
  h.observe(100);
  registry().reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count(), 0u);
}

// -------------------------------------------------------------------------
// Exporters
// -------------------------------------------------------------------------

TEST_F(Metrics, PrometheusExportHasHelpTypeAndSeries) {
  Counter& c = registry().counter("ms_test_prom_total", "prometheus export test");
  Histogram& h = registry().histogram("ms_test_prom_ns", "prometheus histogram test");
  c.reset();
  h.reset();
  c.add(7);
  h.observe(100);

  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  const std::string s = os.str();
  EXPECT_NE(s.find("# HELP ms_test_prom_total prometheus export test"), std::string::npos);
  EXPECT_NE(s.find("# TYPE ms_test_prom_total counter"), std::string::npos);
  EXPECT_NE(s.find("ms_test_prom_total 7"), std::string::npos);
  EXPECT_NE(s.find("# TYPE ms_test_prom_ns histogram"), std::string::npos);
  EXPECT_NE(s.find("ms_test_prom_ns_bucket{le="), std::string::npos);
  EXPECT_NE(s.find("ms_test_prom_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(s.find("ms_test_prom_ns_sum 100"), std::string::npos);
  EXPECT_NE(s.find("ms_test_prom_ns_count 1"), std::string::npos);
}

TEST_F(Metrics, JsonExportGroupsByKind) {
  Counter& c = registry().counter("ms_test_json_total", "json export test");
  c.reset();
  c.add(11);

  std::ostringstream os;
  write_json(os, registry().snapshot());
  const std::string s = os.str();
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"ms_test_json_total\": 11"), std::string::npos);
}

}  // namespace
}  // namespace ms::telemetry
