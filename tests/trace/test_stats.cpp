#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ms::trace {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(MeanSkipFirst, DropsWarmup) {
  EXPECT_DOUBLE_EQ(mean_skip_first({100.0, 10.0, 20.0}), 15.0);
}

TEST(MeanSkipFirst, TwoSamplesUsesSecond) {
  EXPECT_DOUBLE_EQ(mean_skip_first({99.0, 7.0}), 7.0);
}

TEST(MeanSkipFirst, TooFewSamplesThrows) {
  EXPECT_THROW((void)mean_skip_first({1.0}), std::invalid_argument);
  EXPECT_THROW((void)mean_skip_first({}), std::invalid_argument);
}

TEST(Gflops, Conversion) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1000.0), 2.0);  // 2 GFLOP in 1 s
  EXPECT_DOUBLE_EQ(gflops(1e9, 1.0), 1000.0);  // 1 GFLOP in 1 ms
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.0), 0.0);     // guard
}

}  // namespace
}  // namespace ms::trace
