#include "trace/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ms::trace {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowCountAndValidation) {
  Table t({"a", "b"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(AsciiChart, RendersSeriesAndLabels) {
  AsciiChart c("test chart", 40, 8);
  c.add_series("up", {1.0, 2.0, 3.0, 4.0});
  c.add_series("down", {4.0, 3.0, 2.0, 1.0});
  c.set_x_labels({"a", "b", "c", "d"});
  std::ostringstream os;
  c.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("test chart"), std::string::npos);
  EXPECT_NE(s.find("'*' = up"), std::string::npos);
  EXPECT_NE(s.find("'o' = down"), std::string::npos);
  EXPECT_NE(s.find("a, b, c, d"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptyAndConstantSeries) {
  AsciiChart empty("empty");
  std::ostringstream os;
  empty.print(os);
  EXPECT_NE(os.str().find("no data"), std::string::npos);

  AsciiChart flat("flat");
  flat.add_series("c", {5.0, 5.0, 5.0});
  std::ostringstream os2;
  EXPECT_NO_THROW(flat.print(os2));
}

TEST(AsciiChart, SingleSample) {
  AsciiChart c("one");
  c.add_series("s", {42.0});
  std::ostringstream os;
  EXPECT_NO_THROW(c.print(os));
}

}  // namespace
}  // namespace ms::trace
