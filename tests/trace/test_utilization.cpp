#include "trace/utilization.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ms::trace {
namespace {

Span make(SpanKind k, double s, double e, int device = 0, int partition = 0) {
  Span sp;
  sp.kind = k;
  sp.device = device;
  sp.partition = partition;
  sp.start = sim::SimTime::micros(s);
  sp.end = sim::SimTime::micros(e);
  return sp;
}

TEST(Utilization, EmptyTimeline) {
  const auto r = summarize(Timeline{});
  EXPECT_DOUBLE_EQ(r.horizon_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.0);
  EXPECT_TRUE(r.partition_busy_ms.empty());
}

TEST(Utilization, ZeroHorizonTimelineYieldsFiniteZeros) {
  // A non-empty timeline whose spans are all instantaneous has horizon 0;
  // utilizations must come out 0, not NaN from a 0/0 division.
  Timeline t;
  t.record(make(SpanKind::Sync, 1000, 1000));
  t.record(make(SpanKind::Kernel, 1000, 1000, 0, 0));
  const auto r = summarize(t);
  EXPECT_DOUBLE_EQ(r.horizon_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_partition_utilization, 0.0);

  std::ostringstream os;
  print(os, r);  // per-partition percentages must not divide by the horizon
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(Utilization, AggregatesByKindAndPartition) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 1000));
  t.record(make(SpanKind::D2H, 1000, 1500));
  t.record(make(SpanKind::Kernel, 0, 2000, 0, 0));
  t.record(make(SpanKind::Kernel, 0, 1000, 0, 1));
  t.record(make(SpanKind::Sync, 2000, 2000));
  const auto r = summarize(t);
  EXPECT_DOUBLE_EQ(r.horizon_ms, 2.0);
  EXPECT_DOUBLE_EQ(r.link_busy_ms, 1.5);
  EXPECT_DOUBLE_EQ(r.kernel_busy_ms, 3.0);
  EXPECT_DOUBLE_EQ(r.link_utilization, 0.75);
  ASSERT_EQ(r.partition_busy_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(r.partition_busy_ms.at({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(r.partition_busy_ms.at({0, 1}), 1.0);
  EXPECT_NEAR(r.mean_partition_utilization, 0.75, 1e-12);
}

TEST(Utilization, ClassifiesBottleneck) {
  Timeline io;
  io.record(make(SpanKind::H2D, 0, 1000));
  io.record(make(SpanKind::Kernel, 0, 100, 0, 0));
  EXPECT_TRUE(summarize(io).transfer_bound());

  Timeline compute;
  compute.record(make(SpanKind::H2D, 0, 100));
  compute.record(make(SpanKind::Kernel, 0, 1000, 0, 0));
  EXPECT_FALSE(summarize(compute).transfer_bound());
}

TEST(Utilization, MultiDevicePartitionsAreDistinct) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0, 100, 0, 0));
  t.record(make(SpanKind::Kernel, 0, 100, 1, 0));
  const auto r = summarize(t);
  EXPECT_EQ(r.partition_busy_ms.size(), 2u);
}

TEST(Utilization, PrintsReadableSummary) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 500));
  t.record(make(SpanKind::Kernel, 0, 1000, 0, 3));
  std::ostringstream os;
  print(os, summarize(t));
  const std::string s = os.str();
  EXPECT_NE(s.find("link busy"), std::string::npos);
  EXPECT_NE(s.find("dev0.p3"), std::string::npos);
}

}  // namespace
}  // namespace ms::trace
