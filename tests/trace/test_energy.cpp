#include "trace/energy.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "apps/mm_app.hpp"

namespace ms::trace {
namespace {

Span make(SpanKind k, double start_ms, double end_ms, int partition = 0) {
  Span s;
  s.kind = k;
  s.partition = partition;
  s.start = sim::SimTime::millis(start_ms);
  s.end = sim::SimTime::millis(end_ms);
  return s;
}

sim::CoprocessorSpec phi() { return sim::SimConfig::phi_31sp().device; }

TEST(Energy, EmptyTimelineIsZero) {
  EXPECT_DOUBLE_EQ(measure_energy(Timeline{}, phi()).total_j(), 0.0);
}

TEST(Energy, ZeroHorizonTimelineIsFinite) {
  // All-instantaneous spans: elapsed 0, every term 0, and the mean-Watts
  // print must not divide by the zero elapsed time.
  Timeline t;
  t.record(make(SpanKind::Kernel, 5.0, 5.0));
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.elapsed_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.total_j(), 0.0);

  std::ostringstream os;
  print(os, r);
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(Energy, PrintsReadableSummary) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0.0, 1000.0));
  t.record(make(SpanKind::H2D, 0.0, 500.0));
  std::ostringstream os;
  print(os, measure_energy(t, phi()));
  const std::string s = os.str();
  EXPECT_NE(s.find("energy"), std::string::npos);
  EXPECT_NE(s.find("idle"), std::string::npos);
  EXPECT_NE(s.find(" W)"), std::string::npos);
}

TEST(Energy, IdleEnergyCoversWholeSpan) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0.0, 1000.0));  // 1 s
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.elapsed_ms, 1000.0);
  EXPECT_DOUBLE_EQ(r.idle_j, 95.0);  // 95 W x 1 s
}

TEST(Energy, SinglePartitionKernelChargesAllCores) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0.0, 1000.0));
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.compute_j, 3.0 * 56.0);  // 3 W/core x 56 cores x 1 s
}

TEST(Energy, FourPartitionsShareTheCores) {
  // Four concurrent kernels on quarter-partitions burn the same compute
  // energy as one whole-device kernel of the same duration.
  Timeline t;
  for (int p = 0; p < 4; ++p) t.record(make(SpanKind::Kernel, 0.0, 1000.0, p));
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.compute_j, 3.0 * 56.0);
}

TEST(Energy, TransfersChargeTheLink) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0.0, 500.0));
  t.record(make(SpanKind::D2H, 500.0, 1000.0));
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.link_j, 12.0);  // 12 W over a total of 1 s of DMA
}

TEST(Energy, PerJouleMetric) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0.0, 1000.0));
  const auto r = measure_energy(t, phi());
  const double flops = 500e9;
  EXPECT_NEAR(r.per_joule(flops) / 1e9, 500.0 / r.total_j(), 1e-9);
  EXPECT_DOUBLE_EQ(EnergyReport{}.per_joule(1.0), 0.0);
}

TEST(Energy, StreamedMmBeatsBaselinePerWatt) {
  // The paper's intro claim, measured: the streamed port finishes sooner,
  // spends less idle energy, and therefore wins performance-per-Watt by
  // MORE than its speedup.
  apps::MmConfig mc;
  mc.dim = 6000;
  mc.tile_grid = 12;
  mc.common.partitions = 4;
  mc.common.functional = false;
  mc.common.protocol_iterations = 1;
  const auto streamed = apps::MmApp::run(sim::SimConfig::phi_31sp(), mc);
  mc.common.streamed = false;
  const auto baseline = apps::MmApp::run(sim::SimConfig::phi_31sp(), mc);

  const double flops = apps::MmApp::total_flops(mc.dim);
  const auto es = measure_energy(streamed.timeline, phi());
  const auto eb = measure_energy(baseline.timeline, phi());
  const double flops_per_j_streamed = es.per_joule(flops);
  const double flops_per_j_baseline = eb.per_joule(flops);
  EXPECT_GT(flops_per_j_streamed, flops_per_j_baseline);
}

TEST(Energy, SyncAndAllocSpansAreFree) {
  Timeline t;
  t.record(make(SpanKind::Sync, 0.0, 100.0));
  t.record(make(SpanKind::Alloc, 100.0, 200.0));
  const auto r = measure_energy(t, phi());
  EXPECT_DOUBLE_EQ(r.compute_j, 0.0);
  EXPECT_DOUBLE_EQ(r.link_j, 0.0);
  EXPECT_GT(r.idle_j, 0.0);
}

}  // namespace
}  // namespace ms::trace
