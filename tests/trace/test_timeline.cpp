#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ms::trace {
namespace {

using sim::SimTime;

Span make(SpanKind k, double start_us, double end_us, int stream = 0) {
  Span s;
  s.kind = k;
  s.stream = stream;
  s.start = SimTime::micros(start_us);
  s.end = SimTime::micros(end_us);
  return s;
}

TEST(Timeline, EmptyTimeline) {
  Timeline t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.busy(SpanKind::Kernel), SimTime::zero());
  EXPECT_EQ(t.first_start(), SimTime::zero());
  EXPECT_EQ(t.last_end(), SimTime::zero());
  EXPECT_EQ(t.overlap(SpanKind::H2D, SpanKind::Kernel), SimTime::zero());
}

TEST(Timeline, BusySumsDurationsPerKind) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 10));
  t.record(make(SpanKind::H2D, 20, 25));
  t.record(make(SpanKind::Kernel, 0, 100));
  EXPECT_EQ(t.busy(SpanKind::H2D), SimTime::micros(15));
  EXPECT_EQ(t.busy(SpanKind::Kernel), SimTime::micros(100));
  EXPECT_EQ(t.busy(SpanKind::D2H), SimTime::zero());
}

TEST(Timeline, FirstStartLastEnd) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 5, 10));
  t.record(make(SpanKind::H2D, 2, 4));
  t.record(make(SpanKind::D2H, 8, 30));
  EXPECT_EQ(t.first_start(), SimTime::micros(2));
  EXPECT_EQ(t.last_end(), SimTime::micros(30));
}

TEST(Timeline, OverlapDisjointIsZero) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 10));
  t.record(make(SpanKind::Kernel, 10, 20));
  EXPECT_EQ(t.overlap(SpanKind::H2D, SpanKind::Kernel), SimTime::zero());
}

TEST(Timeline, OverlapPartial) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 10));
  t.record(make(SpanKind::Kernel, 6, 20));
  EXPECT_EQ(t.overlap(SpanKind::H2D, SpanKind::Kernel), SimTime::micros(4));
}

TEST(Timeline, OverlapNestedAndMultiple) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 100));
  t.record(make(SpanKind::Kernel, 10, 20));
  t.record(make(SpanKind::Kernel, 30, 50));
  EXPECT_EQ(t.overlap(SpanKind::H2D, SpanKind::Kernel), SimTime::micros(30));
}

TEST(Timeline, OverlapDoesNotDoubleCountConcurrentSpans) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 10));
  t.record(make(SpanKind::H2D, 0, 10));  // two concurrent transfers
  t.record(make(SpanKind::Kernel, 0, 10));
  EXPECT_EQ(t.overlap(SpanKind::H2D, SpanKind::Kernel), SimTime::micros(10));
}

TEST(Timeline, OverlapSameKindCountsConcurrency) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0, 10, 0));
  t.record(make(SpanKind::Kernel, 5, 15, 1));
  EXPECT_EQ(t.overlap(SpanKind::Kernel, SpanKind::Kernel), SimTime::micros(5));
}

TEST(Timeline, CountByKind) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 1));
  t.record(make(SpanKind::H2D, 1, 2));
  t.record(make(SpanKind::D2H, 2, 3));
  EXPECT_EQ(t.count(SpanKind::H2D), 2u);
  EXPECT_EQ(t.count(SpanKind::D2H), 1u);
  EXPECT_EQ(t.count(SpanKind::Kernel), 0u);
}

TEST(Timeline, ClearEmpties) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 1));
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(Timeline, GanttRendersOneRowPerStream) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 50, 0));
  t.record(make(SpanKind::Kernel, 50, 100, 1));
  std::ostringstream os;
  t.render_gantt(os, 40);
  const std::string s = os.str();
  EXPECT_NE(s.find("dev0.s0"), std::string::npos);
  EXPECT_NE(s.find("dev0.s1"), std::string::npos);
  EXPECT_NE(s.find('>'), std::string::npos);  // H2D glyph
  EXPECT_NE(s.find('#'), std::string::npos);  // kernel glyph
}

TEST(Timeline, GanttHandlesEmptyAndDegenerate) {
  Timeline t;
  std::ostringstream os;
  t.render_gantt(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
  t.record(make(SpanKind::H2D, 5, 5));
  std::ostringstream os2;
  t.render_gantt(os2);
  EXPECT_NE(os2.str().find("degenerate"), std::string::npos);
}

TEST(Timeline, SpanKindNames) {
  EXPECT_STREQ(to_string(SpanKind::H2D), "H2D");
  EXPECT_STREQ(to_string(SpanKind::D2H), "D2H");
  EXPECT_STREQ(to_string(SpanKind::Kernel), "EXE");
  EXPECT_STREQ(to_string(SpanKind::Alloc), "ALLOC");
  EXPECT_STREQ(to_string(SpanKind::Sync), "SYNC");
}

}  // namespace
}  // namespace ms::trace
