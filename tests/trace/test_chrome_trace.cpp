#include "trace/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ms::trace {
namespace {

Span make(SpanKind k, double start_us, double end_us, int device, int stream,
          const std::string& label) {
  Span s;
  s.kind = k;
  s.device = device;
  s.stream = stream;
  s.start = sim::SimTime::micros(start_us);
  s.end = sim::SimTime::micros(end_us);
  s.label = intern_label(label);  // Span::label views interned storage
  s.bytes = 1024;
  return s;
}

TEST(ChromeTrace, EmptyTimelineIsValidJson) {
  Timeline t;
  std::ostringstream os;
  write_chrome_trace(os, t);
  EXPECT_EQ(os.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(ChromeTrace, EmitsCompleteEvents) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 150, 0, 2, "upload"));
  std::ostringstream os;
  write_chrome_trace(os, t);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"upload\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"H2D\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(s.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(s.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(s.find("\"dur\":150"), std::string::npos);
  EXPECT_NE(s.find("\"bytes\":1024"), std::string::npos);
}

TEST(ChromeTrace, UnlabelledSpansUseKindName) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0, 10, 0, 0, ""));
  std::ostringstream os;
  write_chrome_trace(os, t);
  EXPECT_NE(os.str().find("\"name\":\"EXE\""), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharactersInLabels) {
  Timeline t;
  t.record(make(SpanKind::Kernel, 0, 10, 0, 0, "a\"b\\c\nd"));
  std::ostringstream os;
  write_chrome_trace(os, t);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(ChromeTrace, MultipleEventsAreCommaSeparated) {
  Timeline t;
  t.record(make(SpanKind::H2D, 0, 10, 0, 0, "x"));
  t.record(make(SpanKind::D2H, 10, 20, 1, 3, "y"));
  std::ostringstream os;
  write_chrome_trace(os, t);
  const std::string s = os.str();
  // Two events, one separating comma between the closing and opening braces.
  EXPECT_NE(s.find("},\n{"), std::string::npos);
  EXPECT_NE(s.find("\"pid\":1"), std::string::npos);
}

TEST(ChromeTrace, CounterSamplesBecomeCounterEvents) {
  Timeline t;
  const telemetry::CounterSample samples[] = {
      {"pdes.lp0.queue_depth", 5000, 3.0},
      {"depot.parked_bytes", 7000, 1048576.0},
  };
  std::ostringstream os;
  write_chrome_trace(os, t, {}, samples);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"pdes.lp0.queue_depth\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"counter\""), std::string::npos);
  EXPECT_NE(s.find("\"args\":{\"value\":3}"), std::string::npos);
  EXPECT_NE(s.find("\"args\":{\"value\":1048576}"), std::string::npos);
  // Counters land on the host process and get its metadata even without spans.
  EXPECT_NE(s.find("\"pid\":1000"), std::string::npos);
  EXPECT_NE(s.find("host (wall-clock)"), std::string::npos);
  // Timestamps normalize to the earliest sample: 5000ns -> 0, 7000ns -> 2us.
  EXPECT_NE(s.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(s.find("\"ts\":2.000"), std::string::npos);
}

TEST(ChromeTrace, CountersShareOriginWithHostSpans) {
  Timeline t;
  telemetry::SpanRecord span;
  span.name = "window";
  span.start_ns = 1000;
  span.end_ns = 9000;
  span.thread = 7;
  const telemetry::SpanRecord spans[] = {span};
  const telemetry::CounterSample samples[] = {{"pdes.link0.inflight_bytes", 4000, 64.0}};
  std::ostringstream os;
  write_chrome_trace(os, t, spans, samples);
  const std::string s = os.str();
  // Span starts the track at 0; the counter sits 3us in on the same clock.
  EXPECT_NE(s.find("\"ts\":0.000,\"dur\":8.000"), std::string::npos);
  EXPECT_NE(s.find("\"ts\":3.000,\"args\":{\"value\":64}"), std::string::npos);
}

}  // namespace
}  // namespace ms::trace
