// Timing identities of the canonical H2D -> kernel -> D2H pipeline: the
// relations the paper's Fig. 1 sketch promises, verified exactly on the
// runtime (these are the semantics everything else builds on).

#include <gtest/gtest.h>

#include "rt/context.hpp"
#include "rt/tile_plan.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork elems(double n) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = n;
  return w;
}

struct PipelineTimes {
  double h2d;
  double kernel;
  double d2h;
  double serial;
};

PipelineTimes measure_parts(std::size_t bytes, double kernel_elems) {
  PipelineTimes out{};
  {
    Context ctx(cfg());
    const auto b = ctx.create_virtual_buffer(bytes);
    ctx.synchronize();
    const auto t0 = ctx.host_time();
    ctx.stream(0).enqueue_h2d(b, 0, bytes);
    ctx.synchronize();
    out.h2d = (ctx.host_time() - t0).millis();
  }
  {
    Context ctx(cfg());
    ctx.synchronize();
    const auto t0 = ctx.host_time();
    ctx.stream(0).enqueue_kernel({"k", elems(kernel_elems), {}});
    ctx.synchronize();
    out.kernel = (ctx.host_time() - t0).millis();
  }
  {
    Context ctx(cfg());
    const auto b = ctx.create_virtual_buffer(bytes);
    ctx.synchronize();
    const auto t0 = ctx.host_time();
    ctx.stream(0).enqueue_d2h(b, 0, bytes);
    ctx.synchronize();
    out.d2h = (ctx.host_time() - t0).millis();
  }
  {
    Context ctx(cfg());
    const auto b = ctx.create_virtual_buffer(bytes);
    ctx.synchronize();
    const auto t0 = ctx.host_time();
    ctx.stream(0).enqueue_h2d(b, 0, bytes);
    ctx.stream(0).enqueue_kernel({"k", elems(kernel_elems), {}});
    ctx.stream(0).enqueue_d2h(b, 0, bytes);
    ctx.synchronize();
    out.serial = (ctx.host_time() - t0).millis();
  }
  return out;
}

TEST(PipelineSemantics, SerialIsTheSumOfStages) {
  const auto t = measure_parts(8 << 20, 5e7);
  EXPECT_NEAR(t.serial, t.h2d + t.kernel + t.d2h, 0.15);
}

TEST(PipelineSemantics, TwoTaskOverlapStaysWithinTheoreticalBounds) {
  // Two equal tasks on two streams: the makespan must lie between the
  // one-task serial chain (perfect overlap of the other task) and two
  // serial chains (no overlap at all).
  const std::size_t bytes = 8 << 20;
  const double kelems = 5e7;
  const auto t = measure_parts(bytes, kelems);

  Context ctx(cfg());
  ctx.setup(2);
  const auto b = ctx.create_virtual_buffer(2 * bytes);
  ctx.synchronize();
  const auto t0 = ctx.host_time();
  for (int task = 0; task < 2; ++task) {
    auto& s = ctx.stream(task);
    const std::size_t off = static_cast<std::size_t>(task) * bytes;
    s.enqueue_h2d(b, off, bytes);
    s.enqueue_kernel({"k", elems(kelems), {}});
    s.enqueue_d2h(b, off, bytes);
  }
  ctx.synchronize();
  const double both = (ctx.host_time() - t0).millis();

  // Per-task times on half the device: kernel roughly doubles.
  EXPECT_GT(both, t.serial * 0.95);
  EXPECT_LT(both, 2.0 * (t.h2d + 2.0 * t.kernel + t.d2h));
}

TEST(PipelineSemantics, FourStreamPipelineApproachesTheLinkBound) {
  // Many small tasks, compute sized well under the transfer time: the
  // pipeline should finish close to the link busy time (transfer-bound).
  const std::size_t bytes = 32 << 20;
  Context ctx(cfg());
  ctx.setup(4);
  ctx.set_tracing(true);
  const auto b = ctx.create_virtual_buffer(bytes);
  ctx.synchronize();
  const auto ranges = split_even(bytes, 16);
  const auto t0 = ctx.host_time();
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    auto& s = ctx.stream(static_cast<int>(i) % 4);
    s.enqueue_h2d(b, ranges[i].begin, ranges[i].size());
    s.enqueue_kernel({"k", elems(1e5), {}});
    s.enqueue_d2h(b, ranges[i].begin, ranges[i].size());
  }
  ctx.synchronize();
  const double total = (ctx.host_time() - t0).millis();
  const double link_busy = (ctx.timeline().busy(trace::SpanKind::H2D) +
                            ctx.timeline().busy(trace::SpanKind::D2H))
                               .millis();
  EXPECT_GT(total, link_busy * 0.98);  // cannot beat the serialized link
  EXPECT_LT(total, link_busy * 1.25);  // and should not sit far above it
}

TEST(PipelineSemantics, DeeperTilingNeverBeatsTheLinkBound) {
  // Property over tile counts: the transfer-bound pipeline's makespan is
  // monotone-ish in overhead but always >= the pure link time.
  const std::size_t bytes = 16 << 20;
  Context probe(cfg());
  const double link_ms =
      2.0 * probe.platform().device(0).link().transfer_duration(bytes).millis();
  for (const int tiles : {1, 2, 8, 32, 128}) {
    Context ctx(cfg());
    ctx.setup(4);
    const auto b = ctx.create_virtual_buffer(bytes);
    ctx.synchronize();
    const auto ranges = split_even(bytes, static_cast<std::size_t>(tiles));
    const auto t0 = ctx.host_time();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      auto& s = ctx.stream(static_cast<int>(i) % 4);
      s.enqueue_h2d(b, ranges[i].begin, ranges[i].size());
      s.enqueue_d2h(b, ranges[i].begin, ranges[i].size());
    }
    ctx.synchronize();
    EXPECT_GT((ctx.host_time() - t0).millis(), link_ms * 0.9) << tiles;
  }
}

TEST(PipelineSemantics, OverlapNeverExceedsEitherBusyTime) {
  Context ctx(cfg());
  ctx.setup(4);
  const auto b = ctx.create_virtual_buffer(16 << 20);
  ctx.synchronize();
  const auto ranges = split_even(std::size_t{16} << 20, 8);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    auto& s = ctx.stream(static_cast<int>(i) % 4);
    s.enqueue_h2d(b, ranges[i].begin, ranges[i].size());
    s.enqueue_kernel({"k", elems(2e7), {}});
  }
  ctx.synchronize();
  const auto& tl = ctx.timeline();
  const auto ov = tl.overlap(trace::SpanKind::H2D, trace::SpanKind::Kernel);
  EXPECT_LE(ov, tl.busy(trace::SpanKind::H2D));
  EXPECT_LE(ov, tl.busy(trace::SpanKind::Kernel));
}

}  // namespace
}  // namespace ms::rt
