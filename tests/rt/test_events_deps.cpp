#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e6) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(Events, NullEventCountsAsDone) {
  Event e;
  EXPECT_FALSE(e.valid());
  EXPECT_TRUE(e.done());
  EXPECT_EQ(e.time(), sim::SimTime::zero());
}

TEST(Events, CrossStreamDependencyOrdersExecution) {
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<int> order;
  const Event e0 =
      ctx.stream(0).enqueue_kernel({"producer", work(1e7), [&] { order.push_back(0); }});
  ctx.stream(1).enqueue_kernel({"consumer", work(1e3), [&] { order.push_back(1); }}, {e0});
  ctx.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Events, DependentSpanStartsAfterDependencyEnds) {
  Context ctx(cfg());
  ctx.setup(2);
  const Event e0 = ctx.stream(0).enqueue_kernel({"producer", work(1e7), {}});
  ctx.stream(1).enqueue_kernel({"consumer", work(1e3), {}}, {e0});
  ctx.synchronize();
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_GE(spans[1].start, spans[0].end);
}

TEST(Events, IndependentStreamsIgnoreEachOther) {
  Context ctx(cfg());
  ctx.setup(2);
  ctx.stream(0).enqueue_kernel({"a", work(1e8), {}});
  ctx.stream(1).enqueue_kernel({"b", work(1e3), {}});
  ctx.synchronize();
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 2u);
  // The small kernel must NOT wait for the big one.
  const auto& small = spans[0].label == "b" ? spans[0] : spans[1];
  const auto& big = spans[0].label == "b" ? spans[1] : spans[0];
  EXPECT_LT(small.end, big.end);
}

TEST(Events, MultipleDependenciesAllRespected) {
  Context ctx(cfg());
  ctx.setup(4);
  std::vector<int> order;
  std::vector<Event> deps;
  for (int i = 0; i < 3; ++i) {
    deps.push_back(ctx.stream(i).enqueue_kernel(
        {"p", work(1e6 * (i + 1)), [&order, i] { order.push_back(i); }}));
  }
  ctx.stream(3).enqueue_kernel({"join", work(1e3), [&] { order.push_back(99); }}, deps);
  ctx.synchronize();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.back(), 99);
}

TEST(Events, CompletedDependencyDoesNotBlock) {
  Context ctx(cfg());
  ctx.setup(2);
  const Event e0 = ctx.stream(0).enqueue_kernel({"p", work(), {}});
  ctx.synchronize();
  ASSERT_TRUE(e0.done());
  int ran = 0;
  ctx.stream(1).enqueue_kernel({"c", work(), [&] { ran = 1; }}, {e0});
  ctx.synchronize();
  EXPECT_EQ(ran, 1);
}

TEST(Events, DependencyOnTransferEvent) {
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<float> data(1024, 3.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  const Event up = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  float seen = 0.0f;
  ctx.stream(1).enqueue_kernel({"probe", work(), [&] { seen = *ctx.device_ptr<float>(buf, 0); }},
                               {up});
  ctx.synchronize();
  EXPECT_FLOAT_EQ(seen, 3.0f);  // transfer definitely happened first
}

TEST(Events, DiamondDependencyGraph) {
  //      a
  //     / \
  //    b   c
  //     \ /
  //      d
  Context ctx(cfg());
  ctx.setup(4);
  std::vector<char> order;
  const Event a = ctx.stream(0).enqueue_kernel({"a", work(), [&] { order.push_back('a'); }});
  const Event b =
      ctx.stream(1).enqueue_kernel({"b", work(2e6), [&] { order.push_back('b'); }}, {a});
  const Event c =
      ctx.stream(2).enqueue_kernel({"c", work(3e6), [&] { order.push_back('c'); }}, {a});
  ctx.stream(3).enqueue_kernel({"d", work(), [&] { order.push_back('d'); }}, {b, c});
  ctx.synchronize();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 'a');
  EXPECT_EQ(order.back(), 'd');
}

TEST(Events, LongChainAcrossStreams) {
  Context ctx(cfg());
  ctx.setup(4);
  int counter = 0;
  Event prev;
  for (int i = 0; i < 32; ++i) {
    prev = ctx.stream(i % 4).enqueue_kernel(
        {"link", work(), [&counter, i] { EXPECT_EQ(counter, i); ++counter; }}, {prev});
  }
  ctx.synchronize();
  EXPECT_EQ(counter, 32);
}

TEST(Events, DuplicateDependenciesAreHarmless) {
  Context ctx(cfg());
  ctx.setup(2);
  const Event a = ctx.stream(0).enqueue_kernel({"a", work(), {}});
  int ran = 0;
  ctx.stream(1).enqueue_kernel({"b", work(), [&] { ran = 1; }}, {a, a, a});
  ctx.synchronize();
  EXPECT_EQ(ran, 1);
}

TEST(Events, EventTimeMatchesSpanEnd) {
  Context ctx(cfg());
  const Event e = ctx.stream(0).enqueue_kernel({"k", work(), {}});
  ctx.synchronize();
  ASSERT_EQ(ctx.timeline().size(), 1u);
  EXPECT_EQ(e.time(), ctx.timeline().spans()[0].end);
}

}  // namespace
}  // namespace ms::rt
