#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::SimConfig chunked_cfg(std::size_t chunk) {
  auto c = sim::SimConfig::phi_31sp();
  c.link.dma_chunk_bytes = chunk;
  return c;
}

TEST(DmaChunking, OffByDefaultAndTimingUnchanged) {
  EXPECT_EQ(sim::SimConfig::phi_31sp().link.dma_chunk_bytes, 0u);
}

TEST(DmaChunking, TotalDurationMatchesUnchunkedTransfer) {
  // One lone transfer: chunking must not change its end-to-end time (same
  // bytes over the same bandwidth, latency charged once).
  const std::size_t bytes = 8 << 20;

  Context plain(sim::SimConfig::phi_31sp());
  const auto b1 = plain.create_virtual_buffer(bytes);
  plain.synchronize();
  const auto p0 = plain.host_time();
  plain.stream(0).enqueue_h2d(b1, 0, bytes);
  plain.synchronize();

  Context chunked(chunked_cfg(1 << 20));
  const auto b2 = chunked.create_virtual_buffer(bytes);
  chunked.synchronize();
  const auto c0 = chunked.host_time();
  chunked.stream(0).enqueue_h2d(b2, 0, bytes);
  chunked.synchronize();

  EXPECT_NEAR((plain.host_time() - p0).micros(), (chunked.host_time() - c0).micros(), 1.0);
}

TEST(DmaChunking, SmallTransferInterleavesIntoLargeOne) {
  // A big upload starts first; a tiny readback becomes ready shortly after.
  // Unchunked, the readback waits the full upload; chunked, it slots in at
  // the next chunk boundary.
  const std::size_t big = 32 << 20;  // ~4.9 ms on the link
  const std::size_t tiny = 4096;

  auto run = [&](const sim::SimConfig& cfg) {
    Context ctx(cfg);
    ctx.setup(2);
    const auto buf = ctx.create_virtual_buffer(big);
    ctx.synchronize();
    const sim::SimTime t0 = ctx.host_time();
    ctx.stream(0).enqueue_h2d(buf, 0, big);
    const Event done = ctx.stream(1).enqueue_d2h(buf, 0, tiny);
    ctx.synchronize();
    return (done.time() - t0).millis();
  };

  const double blocked = run(sim::SimConfig::phi_31sp());
  const double interleaved = run(chunked_cfg(1 << 20));
  EXPECT_GT(blocked, 4.5);        // waited for the whole upload
  EXPECT_LT(interleaved, 0.5);    // slotted in after ~1 chunk
}

TEST(DmaChunking, FunctionalPayloadStillDeliversAllBytes) {
  Context ctx(chunked_cfg(1 << 10));
  std::vector<float> host(4096);
  for (std::size_t i = 0; i < host.size(); ++i) host[i] = static_cast<float>(i);
  const auto buf = ctx.create_buffer(std::span<float>(host));
  ctx.stream(0).enqueue_h2d(buf, 0, host.size() * sizeof(float));
  ctx.synchronize();
  const float* dev = ctx.device_ptr<float>(buf, 0);
  for (std::size_t i = 0; i < host.size(); ++i) {
    ASSERT_FLOAT_EQ(dev[i], static_cast<float>(i));
  }
}

TEST(DmaChunking, TimelineRecordsOneSpanPerTransfer) {
  Context ctx(chunked_cfg(1 << 20));
  const auto buf = ctx.create_virtual_buffer(8 << 20);
  ctx.stream(0).enqueue_h2d(buf, 0, 8 << 20);
  ctx.synchronize();
  EXPECT_EQ(ctx.timeline().count(trace::SpanKind::H2D), 1u);
  EXPECT_EQ(ctx.timeline().spans()[0].bytes, 8u << 20);
}

TEST(DmaChunking, InStreamOrderPreserved) {
  // The chunked transfer still completes before the same stream's next
  // action starts.
  Context ctx(chunked_cfg(1 << 20));
  const auto buf = ctx.create_virtual_buffer(8 << 20);
  const Event t = ctx.stream(0).enqueue_h2d(buf, 0, 8 << 20);
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = 1e5;
  const Event k = ctx.stream(0).enqueue_kernel({"k", w, {}});
  ctx.synchronize();
  EXPECT_GE(k.time(), t.time());
}

TEST(DmaChunking, StillSerializesDirections) {
  // Chunking interleaves requests but the engine is still half duplex: the
  // total time of an 8/8 pattern stays the sum, not the max.
  auto cfg = chunked_cfg(1 << 20);
  Context ctx(cfg);
  ctx.setup(2);
  const auto buf = ctx.create_virtual_buffer(16 << 20);
  ctx.synchronize();
  const auto t0 = ctx.host_time();
  ctx.stream(0).enqueue_h2d(buf, 0, 8 << 20);
  ctx.stream(1).enqueue_d2h(buf, 8 << 20, 8 << 20);
  ctx.synchronize();
  EXPECT_NEAR((ctx.host_time() - t0).millis(), 2.5, 0.3);  // 16 MiB serialized
}

}  // namespace
}  // namespace ms::rt
