#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"
#include "rt/errors.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

TEST(Buffers, CreateReportsSizeAndBacking) {
  Context ctx(cfg());
  std::vector<double> data(100, 0.0);
  const auto id = ctx.create_buffer(std::span<double>(data));
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(ctx.buffer_size(id), 800u);
  EXPECT_TRUE(ctx.buffer_backed(id));
}

TEST(Buffers, VirtualBufferHasSizeButNoStorage) {
  Context ctx(cfg());
  const auto id = ctx.create_virtual_buffer(1 << 20);
  EXPECT_EQ(ctx.buffer_size(id), 1u << 20);
  EXPECT_FALSE(ctx.buffer_backed(id));
  EXPECT_THROW((void)ctx.device_data(id, 0), Error);
}

TEST(Buffers, VirtualBufferTransfersAreCostedButMoveNothing) {
  Context ctx(cfg());
  const auto id = ctx.create_virtual_buffer(1 << 20);
  const auto t0 = ctx.host_time();
  ctx.stream(0).enqueue_h2d(id, 0, 1 << 20);
  ctx.synchronize();
  EXPECT_GT((ctx.host_time() - t0).micros(), 100.0);  // ~156 us of DMA
  EXPECT_EQ(ctx.timeline().count(trace::SpanKind::H2D), 1u);
}

TEST(Buffers, DistinctBuffersGetDistinctIdsAndStorage) {
  Context ctx(cfg());
  std::vector<float> a(16, 1.0f), b(16, 2.0f);
  const auto ia = ctx.create_buffer(std::span<float>(a));
  const auto ib = ctx.create_buffer(std::span<float>(b));
  EXPECT_NE(ia, ib);
  EXPECT_NE(ctx.device_data(ia, 0), ctx.device_data(ib, 0));
}

TEST(Buffers, CreateChargesDeviceAllocation) {
  Context ctx(cfg());
  std::vector<float> a(16, 1.0f);
  const std::size_t before = ctx.platform().device(0).memory().bytes_in_use();
  ctx.create_buffer(std::span<float>(a));
  EXPECT_EQ(ctx.platform().device(0).memory().bytes_in_use(), before + 64);
}

TEST(Buffers, DestroyReleasesDeviceMemory) {
  Context ctx(cfg());
  std::vector<float> a(16, 1.0f);
  const std::size_t before = ctx.platform().device(0).memory().bytes_in_use();
  const auto id = ctx.create_buffer(std::span<float>(a));
  ctx.destroy_buffer(id);
  EXPECT_EQ(ctx.platform().device(0).memory().bytes_in_use(), before);
  EXPECT_THROW((void)ctx.buffer_size(id), Error);
}

TEST(Buffers, DestroyUnknownThrows) {
  Context ctx(cfg());
  EXPECT_THROW(ctx.destroy_buffer(BufferId{99}), Error);
}

TEST(Buffers, DestroyWhileInFlightThrows) {
  Context ctx(cfg());
  std::vector<float> a(1024, 1.0f);
  const auto id = ctx.create_buffer(std::span<float>(a));
  ctx.stream(0).enqueue_h2d(id, 0, 4096);
  EXPECT_THROW(ctx.destroy_buffer(id), Error);
  ctx.synchronize();
  EXPECT_NO_THROW(ctx.destroy_buffer(id));
}

TEST(Buffers, NullHostPointerThrows) {
  Context ctx(cfg());
  EXPECT_THROW(ctx.create_buffer(nullptr, 100), Error);
  std::vector<float> a(1);
  EXPECT_THROW(ctx.create_buffer(a.data(), 0), Error);
  EXPECT_THROW(ctx.create_virtual_buffer(0), Error);
}

TEST(Buffers, UnknownHandleInTransfersThrows) {
  Context ctx(cfg());
  EXPECT_THROW(ctx.stream(0).enqueue_h2d(BufferId{123}, 0, 4), Error);
}

TEST(Buffers, MultiDeviceInstantiationsAreIndependent) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(1);
  std::vector<float> a{5.0f};
  const auto id = ctx.create_buffer(std::span<float>(a));
  ctx.stream(0, 0).enqueue_h2d(id, 0, 4);  // device 0 only
  ctx.synchronize();
  EXPECT_FLOAT_EQ(*ctx.device_ptr<float>(id, 0), 5.0f);
  EXPECT_FLOAT_EQ(*ctx.device_ptr<float>(id, 1), 0.0f);  // stale on card 1
}

TEST(Buffers, DeviceOutOfMemorySurfacesAsBadAlloc) {
  sim::SimConfig small = cfg();
  small.device.memory_bytes = 1024;
  Context ctx(small);
  std::vector<float> a(512, 0.0f);  // 2 KiB > 1 KiB card
  EXPECT_THROW(ctx.create_buffer(std::span<float>(a)), std::bad_alloc);
}

TEST(Buffers, RoundTripPreservesData) {
  Context ctx(cfg());
  std::vector<double> out(256);
  std::vector<double> in(256);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i) * 0.5;
  const auto bin = ctx.create_buffer(std::span<double>(in));
  const auto bout = ctx.create_buffer(std::span<double>(out));
  ctx.stream(0).enqueue_h2d(bin, 0, 2048);
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = 256;
  ctx.stream(0).enqueue_kernel({"copy", w, [&] {
                                  const double* src = ctx.device_ptr<double>(bin, 0);
                                  double* dst = ctx.device_ptr<double>(bout, 0);
                                  for (int i = 0; i < 256; ++i) dst[i] = src[i] * 2.0;
                                }});
  ctx.stream(0).enqueue_d2h(bout, 0, 2048);
  ctx.synchronize();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i));
  }
}

}  // namespace
}  // namespace ms::rt
