#include "rt/stream.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rt/context.hpp"
#include "rt/errors.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork small_kernel() {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = 1e6;
  return w;
}

TEST(Stream, H2dMovesBytesToDeviceShadow) {
  Context ctx(cfg());
  std::vector<float> host{1.0f, 2.0f, 3.0f, 4.0f};
  const auto buf = ctx.create_buffer(std::span<float>(host));
  ctx.stream(0).enqueue_h2d(buf, 0, 16);
  ctx.synchronize();
  const float* dev = ctx.device_ptr<float>(buf, 0);
  EXPECT_FLOAT_EQ(dev[0], 1.0f);
  EXPECT_FLOAT_EQ(dev[3], 4.0f);
}

TEST(Stream, D2hMovesBytesBack) {
  Context ctx(cfg());
  std::vector<float> host(4, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(host));
  float* dev = ctx.device_ptr<float>(buf, 0);
  dev[2] = 42.0f;
  ctx.stream(0).enqueue_d2h(buf, 0, 16);
  ctx.synchronize();
  EXPECT_FLOAT_EQ(host[2], 42.0f);
}

TEST(Stream, PartialTransferRespectsOffset) {
  Context ctx(cfg());
  std::vector<float> host{1.0f, 2.0f, 3.0f, 4.0f};
  const auto buf = ctx.create_buffer(std::span<float>(host));
  ctx.stream(0).enqueue_h2d(buf, 8, 8);  // elements 2..3 only
  ctx.synchronize();
  const float* dev = ctx.device_ptr<float>(buf, 0);
  EXPECT_FLOAT_EQ(dev[0], 0.0f);  // untouched (device memory zero-filled)
  EXPECT_FLOAT_EQ(dev[2], 3.0f);
}

TEST(Stream, DeviceDataIsDistinctFromHost) {
  // Forgetting a transfer must be observable: the kernel sees zeros.
  Context ctx(cfg());
  std::vector<float> host{7.0f};
  const auto buf = ctx.create_buffer(std::span<float>(host));
  float seen = -1.0f;
  KernelLaunch k{"probe", small_kernel(), [&] { seen = *ctx.device_ptr<float>(buf, 0); }};
  ctx.stream(0).enqueue_kernel(std::move(k));
  ctx.synchronize();
  EXPECT_FLOAT_EQ(seen, 0.0f);
}

TEST(Stream, InStreamActionsExecuteInOrder) {
  Context ctx(cfg());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ctx.stream(0).enqueue_kernel({"k", small_kernel(), [&order, i] { order.push_back(i); }});
  }
  ctx.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Stream, InStreamActionsDoNotOverlapInTime) {
  Context ctx(cfg());
  for (int i = 0; i < 4; ++i) ctx.stream(0).enqueue_kernel({"k", small_kernel(), {}});
  ctx.synchronize();
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start, spans[i - 1].end);
  }
}

TEST(Stream, KernelsOnDifferentPartitionsOverlap) {
  Context ctx(cfg());
  ctx.setup(2);
  ctx.stream(0).enqueue_kernel({"a", small_kernel(), {}});
  ctx.stream(1).enqueue_kernel({"b", small_kernel(), {}});
  ctx.synchronize();
  EXPECT_GT(ctx.timeline().overlap(trace::SpanKind::Kernel, trace::SpanKind::Kernel),
            sim::SimTime::zero());
}

TEST(Stream, TransferOverlapsKernelOfOtherStream) {
  // The core temporal-sharing claim: H2D on stream 1 while stream 0 computes.
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<float> data(1 << 20, 1.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  sim::KernelWork big = small_kernel();
  big.elems = 1e8;
  ctx.stream(0).enqueue_kernel({"compute", big, {}});
  ctx.stream(1).enqueue_h2d(buf, 0, data.size() * sizeof(float));
  ctx.synchronize();
  EXPECT_GT(ctx.timeline().overlap(trace::SpanKind::Kernel, trace::SpanKind::H2D),
            sim::SimTime::zero());
}

TEST(Stream, TransfersNeverOverlapEachOther) {
  // Paper finding #1, at the runtime level: even from different streams,
  // H2D and D2H serialise on the DMA engine.
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<float> data(1 << 20, 1.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  const std::size_t bytes = data.size() * sizeof(float);
  ctx.stream(0).enqueue_h2d(buf, 0, bytes / 2);
  ctx.stream(1).enqueue_d2h(buf, bytes / 2, bytes / 2);
  ctx.synchronize();
  EXPECT_EQ(ctx.timeline().overlap(trace::SpanKind::H2D, trace::SpanKind::D2H),
            sim::SimTime::zero());
}

TEST(Stream, SynchronizeWaitsForThisStreamOnly) {
  Context ctx(cfg());
  ctx.setup(2);
  int done0 = 0;
  ctx.stream(0).enqueue_kernel({"k0", small_kernel(), [&] { done0 = 1; }});
  ctx.stream(0).synchronize();
  EXPECT_EQ(done0, 1);
  EXPECT_TRUE(ctx.stream(0).idle());
}

TEST(Stream, ZeroLengthTransferThrows) {
  Context ctx(cfg());
  std::vector<float> data(4, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  EXPECT_THROW(ctx.stream(0).enqueue_h2d(buf, 0, 0), Error);
}

TEST(Stream, OutOfRangeTransferThrows) {
  Context ctx(cfg());
  std::vector<float> data(4, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  EXPECT_THROW(ctx.stream(0).enqueue_h2d(buf, 0, 17), Error);
  EXPECT_THROW(ctx.stream(0).enqueue_d2h(buf, 16, 1), Error);
}

TEST(Stream, LastEventTracksMostRecentAction) {
  Context ctx(cfg());
  EXPECT_FALSE(ctx.stream(0).last_event().valid());
  std::vector<float> data(4, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  const Event e = ctx.stream(0).enqueue_h2d(buf, 0, 16);
  EXPECT_TRUE(ctx.stream(0).last_event().valid());
  EXPECT_FALSE(e.done());
  ctx.synchronize();
  EXPECT_TRUE(e.done());
  EXPECT_GT(e.time(), sim::SimTime::zero());
}

TEST(Stream, PendingCountsQueuedActions) {
  Context ctx(cfg());
  std::vector<float> data(4, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  EXPECT_EQ(ctx.stream(0).pending(), 0u);
  ctx.stream(0).enqueue_h2d(buf, 0, 16);
  ctx.stream(0).enqueue_d2h(buf, 0, 16);
  EXPECT_EQ(ctx.stream(0).pending(), 2u);
  ctx.synchronize();
  EXPECT_EQ(ctx.stream(0).pending(), 0u);
}

TEST(Stream, KernelDurationScalesWithPartitionWidth) {
  // The same kernel takes ~4x longer on a quarter of the device.
  sim::KernelWork w = small_kernel();
  w.elems = 1e8;

  Context full(cfg());
  full.stream(0).enqueue_kernel({"k", w, {}});
  full.synchronize();
  const auto t_full = full.timeline().spans()[0].duration();

  Context quarter(cfg());
  quarter.setup(4);
  quarter.stream(0).enqueue_kernel({"k", w, {}});
  quarter.synchronize();
  const auto t_quarter = quarter.timeline().spans()[0].duration();

  EXPECT_NEAR(t_quarter / t_full, 4.0, 0.3);
}

}  // namespace
}  // namespace ms::rt
