// GraphCache under concurrency: LRU eviction racing launch_batch from many
// threads (each with its own context — the cache is the only shared state),
// plus negative tests proving the composite key separates configurations
// that merely share a name. Run under TSan in the sanitizer CI leg.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rt/compiled_graph.hpp"
#include "rt/context.hpp"
#include "rt/graph.hpp"

namespace ms::rt {
namespace {

sim::KernelWork work(double elems) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

Graph pipeline_graph(BufferId buf, int streams) {
  Graph g;
  std::vector<Graph::NodeId> ups;
  for (int s = 0; s < streams; ++s) {
    const auto up = g.add_h2d(s, buf, 0, 1 << 16);
    ups.push_back(g.add_kernel(s, {"k" + std::to_string(s), work(1e6), {}}, {up}));
  }
  g.add_barrier(0, ups);
  return g;
}

/// Eviction races replay: a capacity-2 cache shared by 4 threads cycling
/// through 4 distinct keys, each compiling, launching batches, and forcing
/// the others' slots out. The plan keepalive must protect every in-flight
/// replay while its slot is recycled underneath it.
TEST(GraphCacheConcurrency, EvictionRacesLaunchBatch) {
  GraphCache cache(2);
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      Context ctx(sim::SimConfig::phi_31sp());
      ctx.setup(2);
      const auto buf = ctx.create_virtual_buffer(1 << 20);
      const Graph g = pipeline_graph(buf, 2);
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "shape" + std::to_string((t + i) % kThreads);
        CompiledGraph cg = cache.get_or_compile(key, g, ctx, {.name = key});
        cg.launch_batch(ctx, 3);
        ctx.synchronize();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(cache.misses(), 0u);
}

/// Same key, different SimConfig: the fingerprint component of the cache key
/// must keep the entries apart — a hit across configs would replay a plan
/// whose durations were computed for different hardware.
TEST(GraphCacheConcurrency, SameKeyDifferentConfigNeverCollides) {
  GraphCache cache(8);
  sim::SimConfig a = sim::SimConfig::phi_31sp();
  sim::SimConfig b = sim::SimConfig::phi_31sp();
  b.link.bandwidth_gib_s = a.link.bandwidth_gib_s * 2.0;
  ASSERT_NE(sim::fingerprint(a), sim::fingerprint(b));

  Context ca(a);
  ca.setup(2);
  Context cb(b);
  cb.setup(2);
  const auto buf_a = ca.create_virtual_buffer(1 << 20);
  const auto buf_b = cb.create_virtual_buffer(1 << 20);

  cache.get_or_compile("shared", pipeline_graph(buf_a, 2), ca);
  EXPECT_EQ(cache.misses(), 1u);
  // Identical key string, different platform: must compile fresh.
  CompiledGraph for_b = cache.get_or_compile("shared", pipeline_graph(buf_b, 2), cb);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  // And the second executor is genuinely valid for its own context.
  for_b.launch(cb);
  cb.synchronize();
}

/// Same key and config but a different stream layout is also a miss; the
/// cached plan of the wider layout must not be handed to the narrower one.
TEST(GraphCacheConcurrency, LayoutIsPartOfTheKey) {
  GraphCache cache(8);
  Context wide(sim::SimConfig::phi_31sp());
  wide.setup(4);
  Context narrow(sim::SimConfig::phi_31sp());
  narrow.setup(2);
  const auto buf_w = wide.create_virtual_buffer(1 << 20);
  const auto buf_n = narrow.create_virtual_buffer(1 << 20);
  cache.get_or_compile("pipe", pipeline_graph(buf_w, 2), wide);
  cache.get_or_compile("pipe", pipeline_graph(buf_n, 2), narrow);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace ms::rt
