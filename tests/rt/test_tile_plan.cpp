#include "rt/tile_plan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace ms::rt {
namespace {

TEST(TilePlan, SplitEvenExactDivision) {
  const auto r = split_even(100, 4);
  ASSERT_EQ(r.size(), 4u);
  for (const auto& x : r) EXPECT_EQ(x.size(), 25u);
  EXPECT_EQ(r[0].begin, 0u);
  EXPECT_EQ(r[3].end, 100u);
}

TEST(TilePlan, SplitEvenRemainderGoesToFirstParts) {
  const auto r = split_even(10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].size(), 4u);
  EXPECT_EQ(r[1].size(), 3u);
  EXPECT_EQ(r[2].size(), 3u);
}

TEST(TilePlan, SplitEvenIsContiguousAndComplete) {
  const auto r = split_even(1234, 17);
  std::size_t cursor = 0;
  for (const auto& x : r) {
    EXPECT_EQ(x.begin, cursor);
    cursor = x.end;
  }
  EXPECT_EQ(cursor, 1234u);
}

TEST(TilePlan, SplitEvenInvalidArgsThrow) {
  EXPECT_THROW(split_even(10, 0), std::invalid_argument);
  EXPECT_THROW(split_even(3, 4), std::invalid_argument);
}

TEST(TilePlan, SplitChunksLastMayBeShort) {
  const auto r = split_chunks(10, 4);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].size(), 4u);
  EXPECT_EQ(r[1].size(), 4u);
  EXPECT_EQ(r[2].size(), 2u);
}

TEST(TilePlan, SplitChunksExact) {
  const auto r = split_chunks(8, 4);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1].end, 8u);
}

TEST(TilePlan, SplitChunksZeroChunkThrows) {
  EXPECT_THROW(split_chunks(8, 0), std::invalid_argument);
}

TEST(TilePlan, GridTilesCoverExactly) {
  const auto tiles = grid_tiles(10, 12, 4, 5);
  ASSERT_EQ(tiles.size(), 9u);  // 3 row bands x 3 col bands
  std::size_t total = 0;
  for (const auto& t : tiles) total += t.elems();
  EXPECT_EQ(total, 120u);
  // Edge tiles are clipped.
  EXPECT_EQ(tiles.back().rows(), 2u);
  EXPECT_EQ(tiles.back().cols(), 2u);
}

TEST(TilePlan, GridTilesRowMajorOrder) {
  const auto tiles = grid_tiles(4, 4, 2, 2);
  ASSERT_EQ(tiles.size(), 4u);
  EXPECT_EQ(tiles[0].row_begin, 0u);
  EXPECT_EQ(tiles[0].col_begin, 0u);
  EXPECT_EQ(tiles[1].col_begin, 2u);
  EXPECT_EQ(tiles[2].row_begin, 2u);
}

TEST(TilePlan, GridTilesSingleTile) {
  const auto tiles = grid_tiles(8, 8, 8, 8);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0].elems(), 64u);
}

TEST(TilePlan, GridTilesInvalidThrow) {
  EXPECT_THROW(grid_tiles(4, 4, 0, 2), std::invalid_argument);
  EXPECT_THROW(grid_tiles(4, 4, 2, 0), std::invalid_argument);
}

TEST(TilePlan, RoundRobinCycles) {
  const auto m = round_robin(7, 3);
  EXPECT_EQ(m, (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(TilePlan, RoundRobinMoreStreamsThanTasks) {
  const auto m = round_robin(2, 8);
  EXPECT_EQ(m, (std::vector<int>{0, 1}));
}

TEST(TilePlan, RoundRobinInvalidThrows) {
  EXPECT_THROW(round_robin(4, 0), std::invalid_argument);
}

class SplitEvenSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SplitEvenSweep, BalancedWithinOne) {
  const auto [total, parts] = GetParam();
  const auto r = split_even(total, parts);
  std::size_t lo = total, hi = 0, sum = 0;
  for (const auto& x : r) {
    lo = std::min(lo, x.size());
    hi = std::max(hi, x.size());
    sum += x.size();
  }
  EXPECT_LE(hi - lo, 1u);
  EXPECT_EQ(sum, total);
  EXPECT_EQ(r.size(), parts);
}

INSTANTIATE_TEST_SUITE_P(Cases, SplitEvenSweep,
                         ::testing::Values(std::pair{1UL, 1UL}, std::pair{56UL, 7UL},
                                           std::pair{224UL, 13UL}, std::pair{1000000UL, 224UL},
                                           std::pair{97UL, 96UL}));

}  // namespace
}  // namespace ms::rt
