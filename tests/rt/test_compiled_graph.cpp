// Compiled graph executor: determinism vs the interpreted path, the
// compile-error gallery, stream capture, and the graph cache.

#include "rt/compiled_graph.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "rt/context.hpp"
#include "rt/errors.hpp"
#include "rt/graph.hpp"
#include "rt/tile_plan.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e6) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

/// Timing-only pipeline over `streams` streams: per tile an h2d, a kernel
/// depending on it, and a d2h depending on the kernel, plus a cross-stream
/// dependency every fourth tile so the DAG is not stream-separable.
Graph make_pipeline(BufferId buf, std::size_t bytes, int tiles, int streams) {
  Graph g;
  const auto ranges = split_even(bytes, tiles);
  Graph::NodeId prev_kernel = 0;
  bool have_prev = false;
  for (std::size_t t = 0; t < ranges.size(); ++t) {
    const int s = static_cast<int>(t) % streams;
    const auto up = g.add_h2d(s, buf, ranges[t].begin, ranges[t].size());
    std::vector<Graph::NodeId> deps{up};
    if (have_prev && t % 4 == 0) deps.push_back(prev_kernel);
    const auto k = g.add_kernel(s, {"k", work(1e4), {}}, deps);
    g.add_d2h(s, buf, ranges[t].begin, ranges[t].size(), {k});
    prev_kernel = k;
    have_prev = true;
  }
  return g;
}

// ---------------------------------------------------------------------------
// Determinism: virtual times and results must be bit-identical across the
// interpreted, compiled, and batched paths.
// ---------------------------------------------------------------------------

TEST(CompiledGraph, VirtualTimeBitIdenticalToInterpreted) {
  constexpr int kReplays = 7;

  Context interp(cfg());
  interp.setup(4);
  interp.set_tracing(false);
  const auto b1 = interp.create_virtual_buffer(1 << 20);
  const Graph g1 = make_pipeline(b1, 1 << 20, 64, 4);
  for (int i = 0; i < kReplays; ++i) g1.launch(interp);
  interp.synchronize();

  Context comp(cfg());
  comp.setup(4);
  comp.set_tracing(false);
  const auto b2 = comp.create_virtual_buffer(1 << 20);
  const Graph g2 = make_pipeline(b2, 1 << 20, 64, 4);
  CompiledGraph cg = g2.compile(comp);
  for (int i = 0; i < kReplays; ++i) cg.launch(comp);
  comp.synchronize();

  Context batch(cfg());
  batch.setup(4);
  batch.set_tracing(false);
  const auto b3 = batch.create_virtual_buffer(1 << 20);
  const Graph g3 = make_pipeline(b3, 1 << 20, 64, 4);
  CompiledGraph cgb = g3.compile(batch);
  cgb.launch_batch(batch, kReplays);
  batch.synchronize();

  // Bit-identical, not just close: EXPECT_EQ on the raw micros.
  EXPECT_EQ(interp.host_time().micros(), comp.host_time().micros());
  EXPECT_EQ(interp.host_time().micros(), batch.host_time().micros());
  EXPECT_EQ(cg.replays(), static_cast<std::uint64_t>(kReplays));
  EXPECT_EQ(cgb.replays(), static_cast<std::uint64_t>(kReplays));
}

TEST(CompiledGraph, FunctionalResultsMatchInterpreted) {
  auto run = [](bool compiled) {
    Context ctx(cfg());
    ctx.setup(2);
    std::vector<float> a(1024), b(1024, 0.0f);
    std::iota(a.begin(), a.end(), 1.0f);
    const auto ba = ctx.create_buffer(std::span<float>(a));
    const auto bb = ctx.create_buffer(std::span<float>(b));

    Graph g;
    const auto up = g.add_h2d(0, ba, 0, 4096);
    const auto k = g.add_kernel(0, {"twice", work(1024), [&ctx, ba, bb] {
                                      const float* src = ctx.device_ptr<float>(ba, 0);
                                      float* dst = ctx.device_ptr<float>(bb, 0);
                                      for (int i = 0; i < 1024; ++i) dst[i] = 2.0f * src[i];
                                    }},
                                {up});
    const auto k2 = g.add_kernel(1, {"inc", work(1024), [&ctx, bb] {
                                       float* dst = ctx.device_ptr<float>(bb, 0);
                                       for (int i = 0; i < 1024; ++i) dst[i] += 1.0f;
                                     }},
                                 {k});
    g.add_d2h(0, bb, 0, 4096, {k2});

    if (compiled) {
      CompiledGraph cg = g.compile(ctx);
      cg.launch(ctx);
    } else {
      g.launch(ctx);
    }
    ctx.synchronize();
    const double checksum = std::accumulate(b.begin(), b.end(), 0.0);
    return std::pair{ctx.host_time().micros(), checksum};
  };

  const auto [t_interp, sum_interp] = run(false);
  const auto [t_comp, sum_comp] = run(true);
  EXPECT_EQ(t_interp, t_comp);
  EXPECT_EQ(sum_interp, sum_comp);
  // 2*(1+...+1024) + 1024 = 1024*1025 + 1024.
  EXPECT_DOUBLE_EQ(sum_comp, 1024.0 * 1025.0 + 1024.0);
}

TEST(CompiledGraph, BatchedFunctionalReplayRunsEveryInstance) {
  Context ctx(cfg());
  ctx.setup(2);
  int runs = 0;
  Graph g;
  g.add_kernel(0, {"count", work(), [&runs] { ++runs; }});
  CompiledGraph cg = g.compile(ctx);
  const Event done = cg.launch_batch(ctx, 5);
  ctx.synchronize();
  EXPECT_TRUE(done.done());
  EXPECT_EQ(runs, 5);
}

TEST(CompiledGraph, BatchMatchesSeparateLaunchesInVirtualTime) {
  auto run = [](bool batched) {
    Context ctx(cfg());
    ctx.setup(4);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(1 << 18);
    const Graph g = make_pipeline(buf, 1 << 18, 16, 4);
    CompiledGraph cg = g.compile(ctx);
    if (batched) {
      cg.launch_batch(ctx, 8);
    } else {
      for (int i = 0; i < 8; ++i) cg.launch(ctx);
    }
    ctx.synchronize();
    return ctx.host_time().micros();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(CompiledGraph, RepeatedBatchesReuseTheArenaBitIdentically) {
  // Steady-state batches refresh the arena's actions in place; every batch
  // must still charge exactly what the same count of separate launches does.
  auto run = [](bool batched) {
    Context ctx(cfg());
    ctx.setup(4);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(1 << 18);
    const Graph g = make_pipeline(buf, 1 << 18, 16, 4);
    CompiledGraph cg = g.compile(ctx);
    for (int round = 0; round < 4; ++round) {
      if (batched) {
        cg.launch_batch(ctx, 6);
      } else {
        for (int i = 0; i < 6; ++i) cg.launch(ctx);
      }
      ctx.synchronize();
    }
    return ctx.host_time().micros();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(CompiledGraph, OverlappingBatchesGetIndependentArenas) {
  // A second batch issued while the first is still in flight cannot reuse
  // its arena; it must behave exactly like more separate launches.
  auto run = [](bool batched) {
    Context ctx(cfg());
    ctx.setup(4);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(1 << 18);
    const Graph g = make_pipeline(buf, 1 << 18, 16, 4);
    CompiledGraph cg = g.compile(ctx);
    if (batched) {
      cg.launch_batch(ctx, 5);
      cg.launch_batch(ctx, 5);  // first batch still in flight
    } else {
      for (int i = 0; i < 10; ++i) cg.launch(ctx);
    }
    ctx.synchronize();
    return ctx.host_time().micros();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(CompiledGraph, BatchSurvivesCompatibleLayoutChange) {
  // Growing the stream set bumps the layout epoch; the stale arena (its
  // stream table and durations were resolved against the old layout) must be
  // rebuilt, not replayed.
  Context ctx(cfg());
  ctx.setup(2);
  ctx.set_tracing(false);
  const auto buf = ctx.create_virtual_buffer(1 << 16);
  const Graph g = make_pipeline(buf, 1 << 16, 8, 2);
  CompiledGraph cg = g.compile(ctx);
  cg.launch_batch(ctx, 4);
  ctx.synchronize();
  const auto t_before = ctx.host_time();

  ctx.add_stream(0, 0);
  EXPECT_NO_THROW(cg.launch_batch(ctx, 4));
  ctx.synchronize();
  EXPECT_GT(ctx.host_time().micros(), t_before.micros());
}

TEST(CompiledGraph, RotationKeepsVirtualTimeOnUniformPartitions) {
  // With uniform partitions, rotating the stream assignment must not change
  // completion time: the schedule is symmetric under stream permutation.
  auto run = [](int rotation) {
    Context ctx(cfg());
    ctx.setup(4);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(1 << 18);
    const Graph g = make_pipeline(buf, 1 << 18, 16, 4);
    CompiledGraph cg = g.compile(ctx);
    cg.launch_batch(ctx, 8, rotation);
    ctx.synchronize();
    return ctx.host_time().micros();
  };
  EXPECT_EQ(run(0), run(1));
  EXPECT_EQ(run(0), run(3));
  EXPECT_EQ(run(0), run(-1));  // negative rotations are normalised
}

TEST(CompiledGraph, CompiledReplayIsSameVirtualCostAsInterpreted) {
  // The feature changes host wall-clock, never the modelled cost: one replay
  // charges graph_launch_base + (n+1) * graph_replay_per_node either way.
  auto issue_cost = [](bool compiled) {
    Context ctx(cfg());
    ctx.setup(2);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(1 << 16);
    const Graph g = make_pipeline(buf, 1 << 16, 8, 2);
    CompiledGraph cg = g.compile(ctx);
    ctx.synchronize();
    const auto t0 = ctx.host_time();
    if (compiled) {
      cg.launch(ctx);
    } else {
      g.launch(ctx);
    }
    const auto cost = ctx.host_time() - t0;
    ctx.synchronize();
    return cost;
  };

  const auto interp = issue_cost(false);
  const auto comp = issue_cost(true);
  EXPECT_EQ(interp.micros(), comp.micros());

  const auto& ov = cfg().overhead;
  const Graph probe = make_pipeline(BufferId{1}, 1 << 16, 8, 2);
  const auto expected =
      ov.graph_launch_base + ov.graph_replay_per_node * static_cast<double>(probe.size() + 1);
  EXPECT_NEAR(comp.micros(), expected.micros(), 1e-9);
}

TEST(CompiledGraph, DestroyingExecutorWithLaunchesInFlightIsSafe) {
  // The executor may go out of scope before the context drains: the run
  // state and plan are kept alive until the last action completes.
  Context ctx(cfg());
  ctx.setup(2);
  int runs = 0;
  {
    Graph g;
    const auto buf = ctx.create_virtual_buffer(4096);
    const auto up = g.add_h2d(0, buf, 0, 4096);
    g.add_kernel(1, {"k", work(), [&runs] { ++runs; }}, {up});
    CompiledGraph cg = g.compile(ctx);
    cg.launch(ctx);
    cg.launch_batch(ctx, 3);
  }  // cg (and g) destroyed with 4 replays still in flight
  ctx.synchronize();
  EXPECT_EQ(runs, 4);
}

// ---------------------------------------------------------------------------
// Compile-error gallery.
// ---------------------------------------------------------------------------

TEST(CompiledGraphErrors, EmptyGraphCannotCompile) {
  Context ctx(cfg());
  Graph g;
  EXPECT_THROW((void)g.compile(ctx), Error);
}

TEST(CompiledGraphErrors, BadStreamSurfacesAtCompile) {
  Context ctx(cfg());  // only stream 0 exists
  Graph g;
  g.add_kernel(3, {"k", work(), {}});
  EXPECT_THROW((void)g.compile(ctx), Error);
}

TEST(CompiledGraphErrors, UnknownBufferSurfacesAtCompile) {
  Context ctx(cfg());
  Graph g;
  g.add_h2d(0, BufferId{999}, 0, 64);
  EXPECT_THROW((void)g.compile(ctx), Error);
}

TEST(CompiledGraphErrors, OutOfRangeTransferSurfacesAtCompile) {
  Context ctx(cfg());
  const auto buf = ctx.create_virtual_buffer(4096);
  Graph g;
  g.add_h2d(0, buf, 4000, 1024);  // runs past the end
  EXPECT_THROW((void)g.compile(ctx), Error);
}

TEST(CompiledGraphErrors, LaunchOnIncompatibleConfigThrows) {
  Context a(cfg());
  const auto buf = a.create_virtual_buffer(4096);
  Graph g;
  g.add_h2d(0, buf, 0, 4096);
  CompiledGraph cg = g.compile(a);

  // Same stream layout, different simulated platform: the precomputed
  // durations and charges would be wrong, so launch must refuse.
  Context b(sim::SimConfig::phi_7120p());
  (void)b.create_virtual_buffer(4096);
  EXPECT_THROW((void)cg.launch(b), Error);
}

TEST(CompiledGraphErrors, LaunchOnContextWithTooFewStreamsThrows) {
  Context a(cfg());
  a.setup(4);
  const auto buf = a.create_virtual_buffer(4096);
  Graph g;
  g.add_h2d(3, buf, 0, 4096);
  CompiledGraph cg = g.compile(a);

  Context b(cfg());  // one stream
  (void)b.create_virtual_buffer(4096);
  EXPECT_THROW((void)cg.launch(b), Error);
}

TEST(CompiledGraphErrors, LaunchSurvivesCompatibleLayoutChange) {
  // Growing the stream set bumps the layout epoch; the compiled graph must
  // revalidate and keep working rather than trusting the stale cache.
  Context ctx(cfg());
  ctx.setup(2);
  const auto buf = ctx.create_virtual_buffer(4096);
  Graph g;
  g.add_h2d(1, buf, 0, 4096);
  CompiledGraph cg = g.compile(ctx);
  cg.launch(ctx);
  ctx.synchronize();

  ctx.add_stream(0, 0);
  EXPECT_NO_THROW((void)cg.launch(ctx));
  ctx.synchronize();
}

TEST(CompiledGraphErrors, BatchRequiresPositiveInstanceCount) {
  Context ctx(cfg());
  Graph g;
  g.add_kernel(0, {"k", work(), {}});
  CompiledGraph cg = g.compile(ctx);
  EXPECT_THROW((void)cg.launch_batch(ctx, 0), Error);
  EXPECT_THROW((void)cg.launch_batch(ctx, -3), Error);
}

TEST(CompiledGraphErrors, AnalyzePassCatchesRacyGraph) {
  Context ctx(cfg());
  ctx.setup(2);
  const auto buf = ctx.create_virtual_buffer(4096);

  // Two kernels on different streams write the same range with no ordering
  // edge between them: a write/write race the compile-time pass must flag.
  Graph racy;
  racy.add_kernel(0, KernelLaunch{"w0", work()}.writes(buf, 0, 4096));
  racy.add_kernel(1, KernelLaunch{"w1", work()}.writes(buf, 0, 4096));
  CompileOptions analyze;
  analyze.analyze = true;
  EXPECT_THROW((void)racy.compile(ctx, analyze), Error);
  EXPECT_NO_THROW((void)racy.compile(ctx));  // pass is opt-in

  // Adding the ordering edge makes the same accesses clean.
  Graph clean;
  const auto w0 = clean.add_kernel(0, KernelLaunch{"w0", work()}.writes(buf, 0, 4096));
  clean.add_kernel(1, KernelLaunch{"w1", work()}.writes(buf, 0, 4096), {w0});
  EXPECT_NO_THROW((void)clean.compile(ctx, analyze));
}

// ---------------------------------------------------------------------------
// Stream capture.
// ---------------------------------------------------------------------------

TEST(CompiledGraphCapture, CaptureRecordsWithoutExecuting) {
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<float> a(256, 1.0f);
  const auto buf = ctx.create_buffer(std::span<float>(a));
  ctx.synchronize();
  const auto t0 = ctx.host_time();

  int runs = 0;
  Graph g;
  ctx.begin_capture(g);
  EXPECT_TRUE(ctx.capturing());
  const Event up = ctx.stream(0).enqueue_h2d(buf, 0, 1024);
  ctx.stream(1).enqueue_kernel({"k", work(), [&runs] { ++runs; }}, {up});
  ctx.end_capture();
  EXPECT_FALSE(ctx.capturing());

  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(runs, 0) << "capture must not execute anything";
  EXPECT_EQ((ctx.host_time() - t0).micros(), 0.0) << "capture charges no host time";

  g.launch(ctx);
  ctx.synchronize();
  EXPECT_EQ(runs, 1);
}

TEST(CompiledGraphCapture, CapturedGraphMatchesDirectRecording) {
  // Recording the same enqueue sequence by hand or via capture must produce
  // the same replay schedule, hence identical virtual times.
  auto build = [](Context& ctx, BufferId buf, Graph& g, bool use_capture) {
    if (use_capture) {
      ctx.begin_capture(g);
      for (int t = 0; t < 8; ++t) {
        const int s = t % 2;
        const Event up = ctx.stream(s).enqueue_h2d(buf, static_cast<std::size_t>(t) * 512, 512);
        ctx.stream(s).enqueue_kernel({"k", work(1e4), {}}, {up});
      }
      ctx.end_capture();
    } else {
      for (int t = 0; t < 8; ++t) {
        const int s = t % 2;
        const auto up = g.add_h2d(s, buf, static_cast<std::size_t>(t) * 512, 512);
        g.add_kernel(s, {"k", work(1e4), {}}, {up});
      }
    }
  };

  auto run = [&](bool use_capture) {
    Context ctx(cfg());
    ctx.setup(2);
    ctx.set_tracing(false);
    const auto buf = ctx.create_virtual_buffer(4096);
    Graph g;
    build(ctx, buf, g, use_capture);
    CompiledGraph cg = g.compile(ctx);
    cg.launch_batch(ctx, 4);
    ctx.synchronize();
    return ctx.host_time().micros();
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(CompiledGraphCapture, DependencyOnFinishedWorkIsDropped) {
  Context ctx(cfg());
  const auto buf = ctx.create_virtual_buffer(4096);
  const Event pre = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  ctx.synchronize();
  ASSERT_TRUE(pre.done());

  Graph g;
  ctx.begin_capture(g);
  // `pre` completed before capture began: it is outside the graph, so the
  // recorded node simply has no dependencies.
  ctx.stream(0).enqueue_kernel({"k", work(), {}}, {pre});
  ctx.end_capture();
  EXPECT_EQ(g.size(), 1u);
  g.launch(ctx);
  ctx.synchronize();
}

TEST(CompiledGraphCapture, DependencyOnPendingWorkThrows) {
  Context ctx(cfg());
  const auto buf = ctx.create_virtual_buffer(1 << 20);
  const Event pending = ctx.stream(0).enqueue_h2d(buf, 0, 1 << 20);

  Graph g;
  ctx.begin_capture(g);
  EXPECT_THROW(ctx.stream(0).enqueue_kernel({"k", work(), {}}, {pending}), Error);
  ctx.end_capture();
  ctx.synchronize();
}

TEST(CompiledGraphCapture, BlockingOpsThrowDuringCapture) {
  Context ctx(cfg());
  const auto buf = ctx.create_virtual_buffer(4096);
  Graph g;
  ctx.begin_capture(g);
  const Event phantom = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  EXPECT_THROW(ctx.synchronize(), Error);
  EXPECT_THROW(ctx.wait(phantom), Error);
  EXPECT_THROW(ctx.stream(0).synchronize(), Error);
  EXPECT_THROW(ctx.setup(4), Error);
  EXPECT_THROW(ctx.destroy_buffer(buf), Error);
  Graph other;
  EXPECT_THROW((void)other.launch(ctx), Error);
  ctx.end_capture();
}

TEST(CompiledGraphCapture, NestedOrUnbalancedCaptureThrows) {
  Context ctx(cfg());
  Graph g, h;
  EXPECT_THROW(ctx.end_capture(), Error);  // not capturing
  ctx.begin_capture(g);
  EXPECT_THROW(ctx.begin_capture(h), Error);  // already capturing
  ctx.end_capture();
}

// ---------------------------------------------------------------------------
// GraphCache.
// ---------------------------------------------------------------------------

TEST(GraphCacheTest, SecondLookupHitsAndSharesThePlan) {
  Context ctx(cfg());
  ctx.setup(2);
  const auto buf = ctx.create_virtual_buffer(4096);
  Graph g;
  g.add_h2d(0, buf, 0, 4096);
  g.add_kernel(1, {"k", work(), {}});

  GraphCache cache(4);
  CompiledGraph a = cache.get_or_compile("app", g, ctx);
  CompiledGraph b = cache.get_or_compile("app", g, ctx);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(a.config_fingerprint(), b.config_fingerprint());

  // Both executors replay independently on the shared plan.
  a.launch(ctx);
  b.launch(ctx);
  ctx.synchronize();
  EXPECT_EQ(a.replays(), 1u);
  EXPECT_EQ(b.replays(), 1u);
}

TEST(GraphCacheTest, DifferentConfigOrLayoutMisses) {
  Graph g;
  g.add_kernel(0, {"k", work(), {}});

  GraphCache cache(8);
  Context a(cfg());
  (void)cache.get_or_compile("app", g, a);

  // Different platform: same key string, different fingerprint.
  Context b(sim::SimConfig::phi_7120p());
  (void)cache.get_or_compile("app", g, b);

  // Different stream layout on the original platform.
  Context c(cfg());
  c.setup(4);
  (void)cache.get_or_compile("app", g, c);

  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(GraphCacheTest, LeastRecentlyUsedPlanIsEvicted) {
  Context ctx(cfg());
  Graph g;
  g.add_kernel(0, {"k", work(), {}});

  GraphCache cache(2);
  (void)cache.get_or_compile("a", g, ctx);
  (void)cache.get_or_compile("b", g, ctx);
  (void)cache.get_or_compile("a", g, ctx);  // refresh "a"
  (void)cache.get_or_compile("c", g, ctx);  // evicts "b"
  EXPECT_EQ(cache.size(), 2u);

  (void)cache.get_or_compile("a", g, ctx);
  EXPECT_EQ(cache.hits(), 2u);
  (void)cache.get_or_compile("b", g, ctx);  // must recompile
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(GraphCacheTest, ClearDropsPlansAndStats) {
  Context ctx(cfg());
  Graph g;
  g.add_kernel(0, {"k", work(), {}});
  GraphCache cache(4);
  (void)cache.get_or_compile("a", g, ctx);
  (void)cache.get_or_compile("a", g, ctx);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(GraphCacheTest, ProcessCacheIsSharedAndUsable) {
  Context ctx(cfg());
  Graph g;
  g.add_kernel(0, {"k", work(), {}});
  auto& cache = process_graph_cache();
  const auto misses_before = cache.misses();
  CompiledGraph cg = cache.get_or_compile("test-process-cache-probe", g, ctx);
  cg.launch(ctx);
  ctx.synchronize();
  EXPECT_GE(cache.misses(), misses_before + 1);
}

}  // namespace
}  // namespace ms::rt
