#include "rt/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"
#include "rt/errors.hpp"
#include "rt/tile_plan.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e6) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(Graph, EmptyGraphCannotLaunch) {
  Context ctx(cfg());
  Graph g;
  EXPECT_TRUE(g.empty());
  EXPECT_THROW((void)g.launch(ctx), Error);
}

TEST(Graph, ForwardDependencyIsRejectedAtRecordTime) {
  Graph g;
  EXPECT_THROW(g.add_barrier(0, {0}), Error);  // node 0 does not exist yet
  const auto a = g.add_barrier(0);
  EXPECT_NO_THROW(g.add_barrier(0, {a}));
  EXPECT_THROW(g.add_barrier(0, {5}), Error);
}

TEST(Graph, FunctionalReplayProducesRealResults) {
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<float> a(1024, 4.0f), b(1024, 0.0f);
  const auto ba = ctx.create_buffer(std::span<float>(a));
  const auto bb = ctx.create_buffer(std::span<float>(b));

  Graph g;
  const auto up = g.add_h2d(0, ba, 0, 4096);
  const auto k = g.add_kernel(0, {"twice", work(1024), [&ctx, ba, bb] {
                                    const float* src = ctx.device_ptr<float>(ba, 0);
                                    float* dst = ctx.device_ptr<float>(bb, 0);
                                    for (int i = 0; i < 1024; ++i) dst[i] = 2.0f * src[i];
                                  }},
                              {up});
  g.add_d2h(0, bb, 0, 4096, {k});
  EXPECT_EQ(g.size(), 3u);

  const Event done = g.launch(ctx);
  ctx.synchronize();
  EXPECT_TRUE(done.done());
  for (const float x : b) ASSERT_FLOAT_EQ(x, 8.0f);
}

TEST(Graph, ReplayRunsTheFunctorEveryTime) {
  Context ctx(cfg());
  int runs = 0;
  Graph g;
  g.add_kernel(0, {"count", work(), [&runs] { ++runs; }});
  for (int i = 0; i < 5; ++i) {
    g.launch(ctx);
    ctx.synchronize();
  }
  EXPECT_EQ(runs, 5);
}

TEST(Graph, CompletionEventCoversAllLeaves) {
  Context ctx(cfg());
  ctx.setup(4);
  Graph g;
  std::vector<Graph::NodeId> leaves;
  for (int s = 0; s < 4; ++s) {
    leaves.push_back(g.add_kernel(s, {"k", work(1e6 * (s + 1)), {}}));
  }
  const Event done = g.launch(ctx);
  ctx.wait(done);
  // Waiting on the graph's completion implies every stream's kernel is done.
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(ctx.stream(s).idle());
  }
}

TEST(Graph, CrossStreamDependenciesReplayCorrectly) {
  Context ctx(cfg());
  ctx.setup(2);
  std::vector<int> order;
  Graph g;
  const auto slow = g.add_kernel(0, {"slow", work(1e8), [&] { order.push_back(0); }});
  g.add_kernel(1, {"fast-but-dependent", work(1e3), [&] { order.push_back(1); }}, {slow});
  g.launch(ctx);
  ctx.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Graph, ReplayIsCheaperThanReEnqueueAtLargeT) {
  // The point of the feature: at fine task granularity the per-action
  // enqueue cost dominates; graph replay pays it once at record time.
  const int tiles = 512;
  const std::size_t bytes = 8 << 20;

  auto build = [&](Context& ctx, Graph* g, BufferId buf) {
    const auto ranges = split_even(bytes, tiles);
    for (std::size_t t = 0; t < ranges.size(); ++t) {
      const int s = static_cast<int>(t) % ctx.stream_count();
      if (g != nullptr) {
        const auto up = g->add_h2d(s, buf, ranges[t].begin, ranges[t].size());
        g->add_kernel(s, {"k", work(1e4), {}}, {up});
      } else {
        ctx.stream(s).enqueue_h2d(buf, ranges[t].begin, ranges[t].size());
        ctx.stream(s).enqueue_kernel({"k", work(1e4), {}});
      }
    }
  };

  Context direct(cfg());
  direct.setup(4);
  direct.set_tracing(false);
  const auto b1 = direct.create_virtual_buffer(bytes);
  direct.synchronize();
  const auto d0 = direct.host_time();
  build(direct, nullptr, b1);
  direct.synchronize();
  const double direct_ms = (direct.host_time() - d0).millis();

  Context replay(cfg());
  replay.setup(4);
  replay.set_tracing(false);
  const auto b2 = replay.create_virtual_buffer(bytes);
  Graph g;
  build(replay, &g, b2);  // record only; nothing enqueued yet
  replay.synchronize();
  const auto r0 = replay.host_time();
  g.launch(replay);
  replay.synchronize();
  const double replay_ms = (replay.host_time() - r0).millis();

  EXPECT_LT(replay_ms, direct_ms * 0.75);
}

TEST(Graph, SameGraphLaunchesOnTwoContexts) {
  Graph g;
  // Virtual-buffer ids are assigned deterministically (1, 2, ...), so the
  // same handle value resolves on both contexts.
  Context a(cfg());
  const auto buf_a = a.create_virtual_buffer(4096);
  Context b(cfg());
  const auto buf_b = b.create_virtual_buffer(4096);
  ASSERT_EQ(buf_a.value, buf_b.value);

  const auto up = g.add_h2d(0, buf_a, 0, 4096);
  g.add_kernel(0, {"k", work(), {}}, {up});

  g.launch(a);
  a.synchronize();
  g.launch(b);
  b.synchronize();
  EXPECT_DOUBLE_EQ((a.host_time() - b.host_time()).micros(), 0.0);
}

TEST(Graph, InvalidStreamSurfacesAtLaunch) {
  Context ctx(cfg());  // only stream 0 exists
  Graph g;
  g.add_kernel(3, {"k", work(), {}});
  EXPECT_THROW((void)g.launch(ctx), Error);
}

}  // namespace
}  // namespace ms::rt
