// Proves the compiled-graph zero-allocation steady state: after a warm-up
// replay has grown the action/state/run pools and the engine heap to the
// graph's high-water mark, launch()/synchronize() cycles perform no heap
// allocation at all. Checked with a counting global operator new (the same
// harness as sim/test_engine_alloc.cpp) so it cannot silently regress.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rt/compiled_graph.hpp"
#include "rt/context.hpp"
#include "rt/graph.hpp"
#include "rt/tile_plan.hpp"

namespace {

std::atomic<std::size_t> g_allocs{0};

}  // namespace

// Counting wrappers for the whole test binary; only the deltas sampled
// inside the tests below matter.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ms::rt {
namespace {

sim::KernelWork work(double elems = 1e4) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(CompiledGraphAlloc, SteadyStateReplayAllocatesNothing) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(4);
  ctx.set_tracing(false);
  const std::size_t bytes = 1 << 20;
  const auto buf = ctx.create_virtual_buffer(bytes);

  Graph g;
  const auto ranges = split_even(bytes, 64);
  for (std::size_t t = 0; t < ranges.size(); ++t) {
    const int s = static_cast<int>(t) % 4;
    const auto up = g.add_h2d(s, buf, ranges[t].begin, ranges[t].size());
    const auto k = g.add_kernel(s, {"k", work(), {}}, {up});
    g.add_d2h(s, buf, ranges[t].begin, ranges[t].size(), {k});
  }

  CompiledGraph cg = g.compile(ctx);

  // Warm up: grow the run pool, action/state pools, stream rings, and the
  // engine's event heap to this graph's high-water mark.
  for (int i = 0; i < 3; ++i) {
    cg.launch(ctx);
    ctx.synchronize();
  }

  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    cg.launch(ctx);
    ctx.synchronize();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state compiled replay must not allocate";
}

TEST(CompiledGraphAlloc, SteadyStateBatchAllocatesNothing) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(4);
  ctx.set_tracing(false);
  const auto buf = ctx.create_virtual_buffer(1 << 16);

  Graph g;
  const auto up = g.add_h2d(0, buf, 0, 1 << 16);
  g.add_kernel(1, {"k", work(), {}}, {up});
  CompiledGraph cg = g.compile(ctx);

  for (int i = 0; i < 3; ++i) {
    cg.launch_batch(ctx, 16, /*stream_rotation=*/1);
    ctx.synchronize();
  }

  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) {
    cg.launch_batch(ctx, 16, /*stream_rotation=*/1);
    ctx.synchronize();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state batched replay must not allocate";
}

TEST(CompiledGraphAlloc, SteadyStateArenaBatchAllocatesNothing) {
  // Rotation 0 takes the arena fast path: after the first batch has built
  // the slab, refresh-and-push cycles must be allocation-free too.
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(4);
  ctx.set_tracing(false);
  const auto buf = ctx.create_virtual_buffer(1 << 16);

  Graph g;
  const auto up = g.add_h2d(0, buf, 0, 1 << 16);
  g.add_kernel(1, {"k", work(), {}}, {up});
  CompiledGraph cg = g.compile(ctx);

  for (int i = 0; i < 3; ++i) {
    cg.launch_batch(ctx, 16);
    ctx.synchronize();
  }

  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) {
    cg.launch_batch(ctx, 16);
    ctx.synchronize();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state arena batch must not allocate";
}

}  // namespace
}  // namespace ms::rt
