#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "apps/cf_app.hpp"
#include "rt/context.hpp"
#include "rt/errors.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e5) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(ErrorPaths, KernelFunctorExceptionPropagatesFromSynchronize) {
  Context ctx(cfg());
  ctx.stream(0).enqueue_kernel({"boom", work(), [] { throw std::runtime_error("kernel failed"); }});
  EXPECT_THROW(ctx.synchronize(), std::runtime_error);
}

TEST(ErrorPaths, KernelFunctorExceptionPropagatesFromStreamSync) {
  Context ctx(cfg());
  ctx.setup(2);
  ctx.stream(1).enqueue_kernel({"boom", work(), [] { throw std::logic_error("bad state"); }});
  EXPECT_THROW(ctx.stream(1).synchronize(), std::logic_error);
}

TEST(ErrorPaths, NonPositiveDefiniteMatrixSurfacesFromCfApp) {
  // The POTRF functor throws rt::Error from inside the virtual-time run; it
  // must surface to the caller of the app, not vanish into the engine.
  // Build a config whose deterministic seed produces an SPD matrix, then
  // sabotage positive-definiteness via... we cannot reach the app's
  // internals, so drive the runtime directly instead.
  Context ctx(cfg());
  std::vector<double> not_pd{1.0, 2.0, 2.0, 1.0};  // indefinite 2x2
  const auto buf = ctx.create_buffer(std::span<double>(not_pd));
  ctx.stream(0).enqueue_h2d(buf, 0, 32);
  ctx.stream(0).enqueue_kernel({"potrf", work(), [&ctx, buf] {
                                  double* a = ctx.device_ptr<double>(buf, 0);
                                  // Mimic CfApp's functor contract.
                                  if (!(a[0] > 0.0 && a[0] * a[3] - a[1] * a[2] > 0.0)) {
                                    throw Error("not positive definite");
                                  }
                                }});
  EXPECT_THROW(ctx.synchronize(), Error);
}

TEST(ErrorPaths, WaitOnForeignEventThrows) {
  // An event produced by another context can never complete on this one's
  // engine; wait() must fail loudly instead of spinning.
  Context producer(cfg());
  const Event foreign = producer.stream(0).enqueue_kernel({"k", work(), {}});

  Context consumer(cfg());
  EXPECT_THROW(consumer.wait(foreign), Error);

  producer.synchronize();  // leave the producer clean
}

TEST(ErrorPaths, DependencyOnForeignEventDeadlocksDetectably) {
  Context producer(cfg());
  const Event foreign = producer.stream(0).enqueue_kernel({"k", work(1e9), {}});

  Context consumer(cfg());
  consumer.stream(0).enqueue_kernel({"blocked", work(), {}}, {foreign});
  // The consumer's engine drains without ever running the blocked kernel.
  EXPECT_THROW(consumer.synchronize(), Error);
  producer.synchronize();
}

TEST(ErrorPaths, EngineKeepsVirtualClockAfterFunctorThrow) {
  // After a functor throws, the context's virtual clock is still sane and
  // further independent work can run (the error is the application's to
  // handle; the scheduler state for *other* streams is unaffected).
  Context ctx(cfg());
  ctx.setup(2);
  ctx.stream(0).enqueue_kernel({"boom", work(), [] { throw std::runtime_error("x"); }});
  EXPECT_THROW(ctx.synchronize(), std::runtime_error);
  const auto t = ctx.host_time();
  EXPECT_GE(t, sim::SimTime::zero());
}

TEST(ErrorPaths, NegativeTransferSizesAreImpossibleByType) {
  // Sizes are std::size_t; the API rejects zero and over-range instead.
  Context ctx(cfg());
  const auto buf = ctx.create_virtual_buffer(16);
  EXPECT_THROW(ctx.stream(0).enqueue_h2d(buf, 8, 9), Error);
  EXPECT_THROW(ctx.stream(0).enqueue_h2d(buf, 16, 1), Error);
  EXPECT_NO_THROW(ctx.stream(0).enqueue_h2d(buf, 15, 1));
  ctx.synchronize();
}

}  // namespace
}  // namespace ms::rt
