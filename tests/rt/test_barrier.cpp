#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e6) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(Barrier, CompletesImmediatelyOnIdleStream) {
  Context ctx(cfg());
  const Event b = ctx.stream(0).enqueue_barrier();
  ctx.synchronize();
  EXPECT_TRUE(b.done());
}

TEST(Barrier, HasZeroDuration) {
  Context ctx(cfg());
  ctx.stream(0).enqueue_kernel({"k", work(), {}});
  ctx.stream(0).enqueue_barrier();
  ctx.synchronize();
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].kind, trace::SpanKind::Sync);
  EXPECT_EQ(spans[1].start, spans[1].end);
}

TEST(Barrier, JoinsMultipleStreams) {
  // Classic fork-join: barrier on stream 0 waits for kernels on streams 1-3;
  // the next kernel on stream 0 starts only after the slowest of them.
  Context ctx(cfg());
  ctx.setup(4);
  std::vector<Event> forks;
  for (int i = 1; i < 4; ++i) {
    forks.push_back(ctx.stream(i).enqueue_kernel({"fork", work(1e7 * i), {}}));
  }
  const Event join = ctx.stream(0).enqueue_barrier(forks);
  const Event after = ctx.stream(0).enqueue_kernel({"after", work(), {}});
  ctx.synchronize();
  for (const Event& f : forks) {
    EXPECT_GE(join.time(), f.time());
  }
  EXPECT_GE(after.time(), join.time());
}

TEST(Barrier, OrdersWithinItsOwnStream) {
  // A barrier is an in-order stream member: later actions wait for it even
  // without explicit event edges.
  Context ctx(cfg());
  ctx.setup(2);
  const Event slow = ctx.stream(1).enqueue_kernel({"slow", work(1e8), {}});
  ctx.stream(0).enqueue_barrier({slow});
  int order = 0;
  int at_kernel = -1;
  ctx.stream(1).enqueue_kernel({"marks", work(), [&] { order = 1; }});
  ctx.stream(0).enqueue_kernel({"after-barrier", work(), [&] { at_kernel = order; }});
  ctx.synchronize();
  // Stream 0's kernel ran after the barrier, i.e. after `slow`; the marker
  // on stream 1 may or may not have run, but the barrier's effect held:
  EXPECT_GE(ctx.stream(0).last_event().time(), slow.time());
  EXPECT_NE(at_kernel, -1);
}

TEST(Barrier, ChainOfBarriersIsCheap) {
  Context ctx(cfg());
  const auto t0 = ctx.host_time();
  Event prev;
  for (int i = 0; i < 64; ++i) {
    prev = ctx.stream(0).enqueue_barrier({prev});
  }
  ctx.synchronize();
  EXPECT_TRUE(prev.done());
  // Only enqueue + sync overhead; no kernel/transfer time.
  EXPECT_LT((ctx.host_time() - t0).millis(), 2.0);
}

TEST(Barrier, TracingOffSuppressesSyncSpans) {
  Context ctx(cfg());
  ctx.set_tracing(false);
  ctx.stream(0).enqueue_barrier();
  ctx.synchronize();
  EXPECT_TRUE(ctx.timeline().empty());
}

}  // namespace
}  // namespace ms::rt
