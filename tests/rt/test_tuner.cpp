#include "rt/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace ms::rt {
namespace {

sim::CoprocessorSpec phi() { return sim::SimConfig::phi_31sp().device; }

TEST(Tuner, PartitionCandidatesArePaperSet) {
  const auto p = Tuner::partition_candidates(phi());
  EXPECT_EQ(p, (std::vector<int>{2, 4, 7, 8, 14, 28, 56}));
}

TEST(Tuner, PartitionCandidatesCanIncludeOne) {
  TunerOptions opt;
  opt.include_single_partition = true;
  const auto p = Tuner::partition_candidates(phi(), opt);
  EXPECT_EQ(p.front(), 1);
}

TEST(Tuner, TileCandidatesAreMultiplesOfP) {
  const auto t = Tuner::tile_candidates(4);
  ASSERT_EQ(t.size(), 8u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 4 * static_cast<int>(i + 1));
  }
}

TEST(Tuner, TileCandidatesRespectMultiplierBound) {
  TunerOptions opt;
  opt.max_multiplier = 3;
  EXPECT_EQ(Tuner::tile_candidates(7, opt), (std::vector<int>{7, 14, 21}));
}

TEST(Tuner, TileCandidatesInvalidPartitionsThrow) {
  EXPECT_THROW(Tuner::tile_candidates(0), std::invalid_argument);
}

TEST(Tuner, PrunedSpaceIsProductOfCandidates) {
  const auto space = Tuner::pruned_space(phi());
  EXPECT_EQ(space.size(), 7u * 8u);
  for (const auto& c : space) {
    EXPECT_EQ(c.tiles % c.partitions, 0);  // T = m*P (load balance heuristic)
    EXPECT_EQ(56 % c.partitions, 0);       // P in divisor set
  }
}

TEST(Tuner, PrunedSpaceIsMuchSmallerThanExhaustive) {
  // The paper's point: the heuristics shrink the "huge" search space.
  const auto pruned = Tuner::pruned_space(phi());
  const auto full = Tuner::exhaustive_space(phi(), 448);
  EXPECT_EQ(full.size(), 56u * 448u);
  EXPECT_LT(pruned.size() * 100, full.size());  // >100x reduction
}

TEST(Tuner, ExhaustiveSpaceInvalidThrows) {
  EXPECT_THROW(Tuner::exhaustive_space(phi(), 0), std::invalid_argument);
}

TEST(Tuner, SearchFindsMinimum) {
  const auto space = Tuner::pruned_space(phi());
  // Synthetic metric with a known optimum at P=8, T=16.
  const auto metric = [](Tuner::Candidate c) {
    return std::abs(c.partitions - 8) * 10.0 + std::abs(c.tiles - 16) + 1.0;
  };
  const auto r = Tuner::search(space, metric);
  EXPECT_EQ(r.best.partitions, 8);
  EXPECT_EQ(r.best.tiles, 16);
  EXPECT_DOUBLE_EQ(r.best_metric, 1.0);
  EXPECT_EQ(r.evaluated, space.size());
}

TEST(Tuner, SearchEmptyInputsThrow) {
  EXPECT_THROW((void)Tuner::search({}, [](Tuner::Candidate) { return 0.0; }), std::invalid_argument);
  const auto space = Tuner::pruned_space(phi());
  EXPECT_THROW((void)Tuner::search(space, {}), std::invalid_argument);
}

TEST(Tuner, PrunedSpaceContainsPaperOptima) {
  // Fig. 9/10 best configurations must survive pruning: P=4 with T=4
  // (most apps), and CF's T=100-ish region requires a larger multiplier.
  const auto space = Tuner::pruned_space(phi());
  bool has_p4_t4 = false;
  for (const auto& c : space) has_p4_t4 |= (c.partitions == 4 && c.tiles == 4);
  EXPECT_TRUE(has_p4_t4);

  TunerOptions wide;
  wide.max_multiplier = 25;
  bool has_p4_t100 = false;
  for (const auto& c : Tuner::pruned_space(phi(), wide)) {
    has_p4_t100 |= (c.partitions == 4 && c.tiles == 100);
  }
  EXPECT_TRUE(has_p4_t100);
}

TEST(Tuner, GeneralizesToOtherDevices) {
  // A 61-core KNC (60 usable) has a different divisor set.
  sim::CoprocessorSpec spec = phi();
  spec.cores = 61;
  const auto p = Tuner::partition_candidates(spec);
  const std::set<int> got(p.begin(), p.end());
  EXPECT_TRUE(got.contains(2));
  EXPECT_TRUE(got.contains(3));
  EXPECT_TRUE(got.contains(60));
  EXPECT_FALSE(got.contains(7));  // 7 does not divide 60
}

}  // namespace
}  // namespace ms::rt
