#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"
#include "rt/errors.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

sim::KernelWork work(double elems = 1e7) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(ExtraStreams, AddStreamExtendsTheStreamList) {
  Context ctx(cfg());
  ctx.setup(4);
  Stream& io = ctx.add_stream(0, 0);
  EXPECT_EQ(ctx.stream_count(), 5);
  EXPECT_EQ(io.index(), 4);
  EXPECT_EQ(io.device(), 0);
  EXPECT_EQ(io.partition(), 0);
  EXPECT_EQ(&ctx.stream(4), &io);
}

TEST(ExtraStreams, InvalidPlacementThrows) {
  Context ctx(cfg());
  ctx.setup(2);
  EXPECT_THROW((void)ctx.add_stream(0, 2), Error);
  EXPECT_THROW((void)ctx.add_stream(1, 0), Error);
  EXPECT_THROW((void)ctx.add_stream(-1, 0), Error);
}

TEST(ExtraStreams, SharesThePartitionComputeResource) {
  // Two streams on the same partition: their kernels serialize.
  Context ctx(cfg());
  ctx.setup(2);
  Stream& extra = ctx.add_stream(0, 0);
  ctx.stream(0).enqueue_kernel({"a", work(), {}});
  extra.enqueue_kernel({"b", work(), {}});
  ctx.synchronize();
  EXPECT_EQ(ctx.timeline().overlap(trace::SpanKind::Kernel, trace::SpanKind::Kernel),
            sim::SimTime::zero());
}

TEST(ExtraStreams, TransferStreamUnblocksUploads) {
  // The motivating use: a transfer on a dedicated stream proceeds while the
  // partition's compute stream is busy; on the compute stream it would wait.
  const std::size_t bytes = 8 << 20;

  Context blocked(cfg());
  blocked.setup(1);
  const auto b1 = blocked.create_virtual_buffer(bytes);
  blocked.stream(0).enqueue_kernel({"busy", work(1e9), {}});
  blocked.stream(0).enqueue_h2d(b1, 0, bytes);
  blocked.synchronize();
  const auto blocked_h2d_start = blocked.timeline().spans().back().start;

  Context freed(cfg());
  freed.setup(1);
  const auto b2 = freed.create_virtual_buffer(bytes);
  Stream& io = freed.add_stream(0, 0);
  freed.stream(0).enqueue_kernel({"busy", work(1e9), {}});
  io.enqueue_h2d(b2, 0, bytes);
  freed.synchronize();
  const auto freed_h2d_start = freed.timeline().spans().back().start;

  EXPECT_LT(freed_h2d_start.millis(), blocked_h2d_start.millis() * 0.2);
}

TEST(ExtraStreams, SetupInvalidatesExtraStreams) {
  Context ctx(cfg());
  ctx.setup(2);
  ctx.add_stream(0, 1);
  EXPECT_EQ(ctx.stream_count(), 3);
  ctx.setup(2);
  EXPECT_EQ(ctx.stream_count(), 2);
}

TEST(ContextWait, NullEventReturnsImmediately) {
  Context ctx(cfg());
  const auto t0 = ctx.host_time();
  ctx.wait(Event{});
  EXPECT_EQ(ctx.host_time(), t0);
}

TEST(ContextWait, BlocksUntilEventOnly) {
  // wait(e) must complete e but may leave unrelated later work pending.
  Context ctx(cfg());
  ctx.setup(2);
  const Event fast = ctx.stream(0).enqueue_kernel({"fast", work(1e5), {}});
  ctx.stream(1).enqueue_kernel({"slow", work(1e9), {}});
  ctx.wait(fast);
  EXPECT_TRUE(fast.done());
  EXPECT_FALSE(ctx.stream(1).idle());  // the slow kernel is still in flight
  ctx.synchronize();
}

TEST(ContextWait, AdvancesHostClockToEventTime) {
  Context ctx(cfg());
  const Event e = ctx.stream(0).enqueue_kernel({"k", work(1e8), {}});
  ctx.wait(e);
  EXPECT_GE(ctx.host_time(), e.time());
}

TEST(ContextWait, CompletedEventStillChargesSyncOnly) {
  Context ctx(cfg());
  const Event e = ctx.stream(0).enqueue_kernel({"k", work(1e5), {}});
  ctx.synchronize();
  const auto t0 = ctx.host_time();
  ctx.wait(e);
  // Already done: only the small sync overhead is charged.
  EXPECT_LT((ctx.host_time() - t0).micros(), 100.0);
}

TEST(ContextWait, EnablesHostComputeOverlap) {
  // The async-Kmeans pattern: wait for stage 1, do host work "while" stage 2
  // continues, then wait for stage 2 — total time ~ stage2, not stage1+stage2.
  Context ctx(cfg());
  ctx.setup(2);
  const Event first = ctx.stream(0).enqueue_kernel({"s1", work(1e8), {}});
  const Event second = ctx.stream(1).enqueue_kernel({"s2", work(2e8), {}});
  ctx.wait(first);
  const auto mid = ctx.host_time();
  ctx.wait(second);
  EXPECT_GT(second.time(), first.time());
  // The second wait advanced less than the second kernel's full duration —
  // it was already partially done while we "reduced" after the first.
  EXPECT_LT((ctx.host_time() - mid).micros(), 2.0 * (second.time() - first.time()).micros());
}

}  // namespace
}  // namespace ms::rt
