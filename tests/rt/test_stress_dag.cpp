// Randomized stress suite for the runtime: generate random task graphs
// (random streams, kinds, sizes, and backward dependency edges), run them,
// and check the structural invariants the scheduler must uphold no matter
// what:
//   * every action completes (no lost wakeups / deadlocks),
//   * dependency edges are respected on the virtual timeline,
//   * actions of one stream never overlap (in-order streams),
//   * H2D/D2H spans never overlap each other (serialized DMA),
//   * the whole run is bit-deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "rt/context.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

struct GraphSpec {
  std::uint32_t seed = 0;
  int partitions = 4;
  int actions = 120;
};

struct BuiltGraph {
  std::vector<Event> events;
  std::vector<std::vector<std::size_t>> deps;  // indices of dependency actions
};

BuiltGraph build_random_graph(Context& ctx, BufferId buf, const GraphSpec& spec) {
  std::mt19937 rng(spec.seed);
  std::uniform_int_distribution<int> stream_pick(0, ctx.stream_count() - 1);
  std::uniform_int_distribution<int> kind_pick(0, 3);
  std::uniform_real_distribution<double> size_pick(1e4, 5e6);
  std::uniform_int_distribution<int> dep_count_pick(0, 3);

  BuiltGraph g;
  g.events.reserve(static_cast<std::size_t>(spec.actions));
  g.deps.resize(static_cast<std::size_t>(spec.actions));

  const std::size_t buf_bytes = ctx.buffer_size(buf);
  for (int i = 0; i < spec.actions; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // Random backward dependencies (acyclic by construction).
    std::vector<Event> deps;
    if (i > 0) {
      const int n = dep_count_pick(rng);
      std::uniform_int_distribution<std::size_t> dep_pick(0, idx - 1);
      for (int d = 0; d < n; ++d) {
        const std::size_t target = dep_pick(rng);
        g.deps[idx].push_back(target);
        deps.push_back(g.events[target]);
      }
    }

    Stream& s = ctx.stream(stream_pick(rng));
    Event ev;
    switch (kind_pick(rng)) {
      case 0: {
        const auto bytes = static_cast<std::size_t>(size_pick(rng));
        ev = s.enqueue_h2d(buf, 0, std::min(bytes, buf_bytes), deps);
        break;
      }
      case 1: {
        const auto bytes = static_cast<std::size_t>(size_pick(rng));
        ev = s.enqueue_d2h(buf, 0, std::min(bytes, buf_bytes), deps);
        break;
      }
      case 2: {
        sim::KernelWork w;
        w.kind = sim::KernelKind::Streaming;
        w.elems = size_pick(rng);
        ev = s.enqueue_kernel({"stress", w, {}}, deps);
        break;
      }
      default:
        ev = s.enqueue_barrier(deps);
        break;
    }
    g.events.push_back(ev);
  }
  return g;
}

class StressDag : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StressDag, InvariantsHold) {
  GraphSpec spec;
  spec.seed = GetParam();
  spec.partitions = 1 + static_cast<int>(spec.seed % 7);

  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(spec.partitions);
  const BufferId buf = ctx.create_virtual_buffer(8 << 20);

  const auto graph = build_random_graph(ctx, buf, spec);
  ctx.synchronize();

  // 1. Everything completed.
  for (const Event& e : graph.events) {
    ASSERT_TRUE(e.done());
  }

  // 2. Dependencies respected: dependent completes no earlier than its deps.
  for (std::size_t i = 0; i < graph.deps.size(); ++i) {
    for (const std::size_t d : graph.deps[i]) {
      EXPECT_GE(graph.events[i].time(), graph.events[d].time()) << i << " dep " << d;
    }
  }

  // 3. Per-stream spans are disjoint (in-order streams) and
  // 4. transfers are globally disjoint (serialized DMA).
  const auto& spans = ctx.timeline().spans();
  std::vector<std::vector<std::pair<double, double>>> per_stream(
      static_cast<std::size_t>(ctx.stream_count()));
  std::vector<std::pair<double, double>> transfers;
  for (const auto& s : spans) {
    if (s.start != s.end) {  // barriers are instantaneous
      per_stream[static_cast<std::size_t>(s.stream)].push_back(
          {s.start.micros(), s.end.micros()});
    }
    if (s.kind == trace::SpanKind::H2D || s.kind == trace::SpanKind::D2H) {
      transfers.push_back({s.start.micros(), s.end.micros()});
    }
  }
  auto assert_disjoint = [](std::vector<std::pair<double, double>>& v, const char* what) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_LE(v[i - 1].second, v[i].first + 1e-9) << what << " overlap at " << i;
    }
  };
  for (auto& lane : per_stream) assert_disjoint(lane, "stream");
  assert_disjoint(transfers, "dma");
}

TEST_P(StressDag, Deterministic) {
  auto run_once = [&] {
    GraphSpec spec;
    spec.seed = GetParam();
    Context ctx(sim::SimConfig::phi_31sp());
    ctx.setup(3);
    const BufferId buf = ctx.create_virtual_buffer(8 << 20);
    build_random_graph(ctx, buf, spec);
    ctx.synchronize();
    return ctx.host_time().micros();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressDag,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 10u, 42u, 99u, 1234u, 777777u));

}  // namespace
}  // namespace ms::rt
