#include "rt/logical_view.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "rt/context.hpp"

namespace ms::rt {
namespace {

TEST(LogicalView, SingleCardLayoutMatchesFig3) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(4);
  LogicalView view(ctx);
  EXPECT_EQ(view.domain_count(), 1);
  EXPECT_EQ(view.place_count(), 4);
  EXPECT_EQ(view.stream_count(), 4);
  for (int p = 0; p < 4; ++p) {
    const auto& place = view.place(0, p);
    EXPECT_EQ(place.partition.threads(), 56);
    ASSERT_EQ(place.streams.size(), 1u);
    EXPECT_EQ(place.streams[0]->partition(), p);
  }
}

TEST(LogicalView, TwoCardsAreTwoDomains) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(2);
  LogicalView view(ctx);
  EXPECT_EQ(view.domain_count(), 2);
  EXPECT_EQ(view.place_count(), 4);
  EXPECT_EQ(view.place(1, 1).streams[0]->device(), 1);
}

TEST(LogicalView, ExtraStreamsAppearOnTheirPlace) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(2);
  ctx.add_stream(0, 0);
  ctx.add_stream(0, 0);
  LogicalView view(ctx);
  EXPECT_EQ(view.place(0, 0).streams.size(), 3u);  // 1 compute + 2 extra
  EXPECT_EQ(view.place(0, 1).streams.size(), 1u);
  EXPECT_EQ(view.stream_count(), 4);
}

TEST(LogicalView, ExposesPhysicalGeometry) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(5);  // split cores
  LogicalView view(ctx);
  bool any_split = false;
  for (int p = 0; p < 5; ++p) {
    any_split |= view.place(0, p).partition.split_fraction > 0.0;
  }
  EXPECT_TRUE(any_split);
}

TEST(LogicalView, PlaceLookupValidatesRanges) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(2);
  LogicalView view(ctx);
  EXPECT_THROW((void)view.place(1, 0), std::out_of_range);
  EXPECT_THROW((void)view.place(0, 2), std::out_of_range);
  EXPECT_THROW((void)view.place(-1, 0), std::out_of_range);
}

TEST(LogicalView, DescribeRendersHierarchy) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(2);
  ctx.add_stream(0, 1);
  LogicalView view(ctx);
  std::ostringstream os;
  view.describe(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("domain 0"), std::string::npos);
  EXPECT_NE(s.find("place 0"), std::string::npos);
  EXPECT_NE(s.find("place 1"), std::string::npos);
  EXPECT_NE(s.find("2 stream(s)"), std::string::npos);  // place 1 has the extra
}

TEST(LogicalView, SnapshotDoesNotTrackLaterChanges) {
  Context ctx(sim::SimConfig::phi_31sp());
  ctx.setup(2);
  LogicalView before(ctx);
  ctx.add_stream(0, 0);
  EXPECT_EQ(before.stream_count(), 2);  // snapshot semantics
  LogicalView after(ctx);
  EXPECT_EQ(after.stream_count(), 3);
}

}  // namespace
}  // namespace ms::rt
