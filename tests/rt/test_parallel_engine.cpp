// The parallel engine's contract: virtual times, span sets, functional
// payloads, and analyzer verdicts are bit-identical to the serial engine —
// for every worker-thread count. These tests run the same program on both
// engines and compare everything observable.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "rt/compiled_graph.hpp"
#include "rt/context.hpp"
#include "rt/graph.hpp"
#include "rt/stream.hpp"
#include "sim/par_engine.hpp"
#include "trace/timeline.hpp"

namespace ms::rt {
namespace {

sim::KernelWork work(double elems) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

/// Everything a run exposes, in comparable form. Spans are sorted into a
/// canonical order: the parallel engine merges per-LP timelines at window
/// barriers, so recording order (but never the span *set*) may differ.
struct Observed {
  double host_ms = 0.0;
  std::vector<std::tuple<int, int, int, int, double, double, std::uint64_t, std::string>> spans;
  std::vector<std::byte> payload;

  bool operator==(const Observed&) const = default;
};

Observed observe(Context& ctx, const std::vector<std::byte>& payload) {
  Observed o;
  o.host_ms = ctx.host_time().millis();
  for (const trace::Span& s : ctx.timeline().spans()) {
    o.spans.emplace_back(static_cast<int>(s.kind), s.device, s.stream, s.partition,
                         s.start.micros(), s.end.micros(), s.bytes, std::string(s.label));
  }
  std::sort(o.spans.begin(), o.spans.end());
  o.payload = payload;
  return o;
}

/// Run `program` on a fresh context and capture the observables.
Observed run_program(const sim::SimConfig& cfg, const ContextConfig& ctx_cfg,
                     const std::function<std::vector<std::byte>(Context&)>& program) {
  Context ctx(cfg, ctx_cfg);
  const std::vector<std::byte> payload = program(ctx);
  return observe(ctx, payload);
}

/// Assert serial == parallel at worker counts 1, 2, and all-hardware.
void expect_bit_identical(const sim::SimConfig& cfg,
                          const std::function<std::vector<std::byte>(Context&)>& program,
                          bool analyze = false) {
  ContextConfig serial;
  serial.analyze = analyze;
  const Observed base = run_program(cfg, serial, program);
  for (int threads : {1, 2, 0}) {
    ContextConfig par;
    par.analyze = analyze;
    par.parallel_engine = true;
    par.parallel_threads = threads;
    const Observed got = run_program(cfg, par, program);
    EXPECT_EQ(base.host_ms, got.host_ms) << "threads=" << threads;
    EXPECT_EQ(base.spans, got.spans) << "threads=" << threads;
    EXPECT_EQ(base.payload, got.payload) << "threads=" << threads;
  }
}

/// Cross-device pipeline: dev0 computes, ships through the host to dev1,
/// dev1 computes on the result — transfers, kernels, barriers, and
/// cross-shard event dependencies all in play.
std::vector<std::byte> cross_device_pipeline(Context& ctx) {
  ctx.setup(2);
  std::vector<float> host(1 << 12);
  std::iota(host.begin(), host.end(), 1.0f);
  const auto buf = ctx.create_buffer(std::span<float>(host));
  const std::size_t bytes = host.size() * sizeof(float);

  Stream& a = ctx.stream(0, 0);
  Stream& b = ctx.stream(0, 1);
  Stream& c = ctx.stream(1, 0);
  Stream& d = ctx.stream(1, 1);

  const Event up = a.enqueue_h2d(buf, 0, bytes);
  KernelLaunch k0{"scale0", work(2e6), [&ctx, buf] {
                    float* p = ctx.device_ptr<float>(buf, 0);
                    for (std::size_t i = 0; i < 1u << 12; ++i) p[i] *= 2.0f;
                  }};
  const Event k0done = b.enqueue_kernel(std::move(k0), {up});
  const Event down = a.enqueue_d2h(buf, 0, bytes, {k0done});
  // Re-upload to the second card, gated on the first card's result.
  const Event up1 = c.enqueue_h2d(buf, 0, bytes, {down});
  KernelLaunch k1{"scale1", work(3e6), [&ctx, buf] {
                    float* p = ctx.device_ptr<float>(buf, 1);
                    for (std::size_t i = 0; i < 1u << 12; ++i) p[i] += 1.0f;
                  }};
  const Event k1done = d.enqueue_kernel(std::move(k1), {up1});
  const Event join = c.enqueue_barrier({k1done, k0done});
  c.enqueue_d2h(buf, 0, bytes, {join});
  ctx.synchronize();

  std::vector<std::byte> out(bytes);
  std::memcpy(out.data(), host.data(), bytes);
  return out;
}

TEST(ParallelEngine, CrossDevicePipelineBitIdentical) {
  expect_bit_identical(sim::SimConfig::phi_31sp_x2(), cross_device_pipeline);
}

TEST(ParallelEngine, ThreeDevicesBitIdentical) {
  sim::SimConfig cfg = sim::SimConfig::phi_31sp();
  cfg.num_devices = 3;
  expect_bit_identical(cfg, [](Context& ctx) {
    ctx.setup(2);
    const auto buf = ctx.create_virtual_buffer(8 << 20);
    std::vector<Event> stages;
    for (int d = 0; d < 3; ++d) {
      const Event up = ctx.stream(d, 0).enqueue_h2d(buf, 0, 4 << 20, stages);
      const Event k =
          ctx.stream(d, 1).enqueue_kernel({"k" + std::to_string(d), work(1e7), {}}, {up});
      stages = {ctx.stream(d, 0).enqueue_d2h(buf, 0, 4 << 20, {k})};
    }
    ctx.synchronize();
    return std::vector<std::byte>{};
  });
}

TEST(ParallelEngine, ChunkedTransfersBitIdentical) {
  sim::SimConfig cfg = sim::SimConfig::phi_31sp_x2();
  cfg.link.dma_chunk_bytes = 1 << 20;
  expect_bit_identical(cfg, [](Context& ctx) {
    ctx.setup(1);
    const auto buf = ctx.create_virtual_buffer(8 << 20);
    const Event a = ctx.stream(0, 0).enqueue_h2d(buf, 0, 8 << 20);
    const Event b = ctx.stream(1, 0).enqueue_h2d(buf, 0, 6 << 20, {a});
    ctx.stream(0, 0).enqueue_d2h(buf, 0, 3 << 20, {b});
    ctx.synchronize();
    return std::vector<std::byte>{};
  });
}

TEST(ParallelEngine, WaitAndStreamSyncBitIdentical) {
  expect_bit_identical(sim::SimConfig::phi_31sp_x2(), [](Context& ctx) {
    ctx.setup(2);
    const auto buf = ctx.create_virtual_buffer(4 << 20);
    const Event up = ctx.stream(0, 0).enqueue_h2d(buf, 0, 4 << 20);
    const Event k = ctx.stream(1, 0).enqueue_kernel({"k", work(5e6), {}}, {up});
    ctx.wait(k);  // predicate drain mid-pipeline
    ctx.stream(1, 1).enqueue_kernel({"tail", work(2e6), {}});
    ctx.stream(1, 1).synchronize();
    ctx.stream(0, 1).enqueue_d2h(buf, 0, 1 << 20);
    ctx.synchronize();
    return std::vector<std::byte>{};
  });
}

TEST(ParallelEngine, CompiledGraphAndBatchBitIdentical) {
  expect_bit_identical(sim::SimConfig::phi_31sp_x2(), [](Context& ctx) {
    ctx.setup(2);
    const auto buf = ctx.create_virtual_buffer(4 << 20);
    Graph g;
    const auto up = g.add_h2d(0, buf, 0, 1 << 20);
    const auto k0 = g.add_kernel(1, {"g0", work(4e6), {}}, {up});
    const auto k1 = g.add_kernel(2, {"g1", work(6e6), {}}, {up});
    const auto join = g.add_barrier(3, {k0, k1});
    g.add_d2h(0, buf, 0, 1 << 20, {join});
    CompiledGraph cg = g.compile(ctx, {.name = "par_bit"});
    cg.launch(ctx);
    ctx.synchronize();
    cg.launch_batch(ctx, 4);
    ctx.synchronize();
    return std::vector<std::byte>{};
  });
}

TEST(ParallelEngine, AnalyzerVerdictsMatchSerial) {
  // A clean pipeline passes the hazard pass on both engines with identical
  // virtual times; analyzing contexts exercise the recorder alongside the
  // parallel drain.
  expect_bit_identical(
      sim::SimConfig::phi_31sp_x2(),
      [](Context& ctx) {
        ctx.setup(1);
        std::vector<float> host(1024, 1.0f);
        const auto buf = ctx.create_buffer(std::span<float>(host));
        const Event up = ctx.stream(0, 0).enqueue_h2d(buf, 0, 4096);
        KernelLaunch k{"touch", work(1e6), {}};
        k.reads(buf, 0, 4096);
        const Event kd = ctx.stream(1, 0).enqueue_kernel(std::move(k), {up});
        ctx.stream(0, 0).enqueue_d2h(buf, 0, 4096, {kd});
        ctx.synchronize();
        return std::vector<std::byte>{};
      },
      /*analyze=*/true);
}

TEST(ParallelEngine, SingleDeviceDrainsInWindows) {
  ContextConfig cc;
  cc.parallel_engine = true;
  cc.parallel_threads = 2;
  Context ctx(sim::SimConfig::phi_31sp(), cc);
  ctx.setup(4);
  ASSERT_TRUE(ctx.parallel_engine());
  const auto buf = ctx.create_virtual_buffer(4 << 20);
  for (int p = 0; p < 4; ++p) {
    const Event up = ctx.stream(0, p).enqueue_h2d(buf, 0, 1 << 20);
    ctx.stream(0, p).enqueue_kernel({"k", work(4e6), {}}, {up});
  }
  ctx.synchronize();
  // Same-device dependencies are never cross-shard: no micro-steps needed.
  EXPECT_GE(ctx.platform().par().windows(), 1u);
  EXPECT_EQ(ctx.platform().par().posts(), 0u);
}

TEST(ParallelEngine, CrossShardPostsActuallyHappen) {
  ContextConfig cc;
  cc.parallel_engine = true;
  cc.parallel_threads = 2;
  Context ctx(sim::SimConfig::phi_31sp_x2(), cc);
  ctx.setup(1);
  const auto buf = ctx.create_virtual_buffer(1 << 20);
  const Event up = ctx.stream(0, 0).enqueue_h2d(buf, 0, 1 << 20);
  ctx.stream(1, 0).enqueue_kernel({"far", work(4e6), {}}, {up});
  ctx.synchronize();
  EXPECT_GE(ctx.platform().par().posts(), 1u);
  EXPECT_GE(ctx.platform().par().microsteps(), 1u);
}

TEST(ParallelEngine, EnvVarEnablesParallelMode) {
  setenv("MS_PAR_ENGINE", "1", 1);
  setenv("MS_PAR_THREADS", "1", 1);
  {
    Context ctx(sim::SimConfig::phi_31sp_x2());
    EXPECT_TRUE(ctx.parallel_engine());
    EXPECT_EQ(ctx.platform().par().threads(), 1);
  }
  unsetenv("MS_PAR_ENGINE");
  unsetenv("MS_PAR_THREADS");
  Context off(sim::SimConfig::phi_31sp_x2());
  EXPECT_FALSE(off.parallel_engine());
}

}  // namespace
}  // namespace ms::rt
