#include <gtest/gtest.h>

#include <vector>

#include "rt/context.hpp"

namespace ms::rt {
namespace {

sim::KernelWork work(double elems = 1e7) {
  sim::KernelWork w;
  w.kind = sim::KernelKind::Streaming;
  w.elems = elems;
  return w;
}

TEST(MultiDevice, KernelsOnDifferentCardsOverlapFully) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(1);
  ctx.stream(0, 0).enqueue_kernel({"a", work(1e8), {}});
  ctx.stream(1, 0).enqueue_kernel({"b", work(1e8), {}});
  ctx.synchronize();
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Same partition index but different cards: starts differ only by the
  // host's serial enqueue overhead (tens of us), not by kernel duration.
  EXPECT_LT((spans[1].start - spans[0].start).micros(), 50.0);
  EXPECT_GT(ctx.timeline().overlap(trace::SpanKind::Kernel, trace::SpanKind::Kernel),
            spans[0].duration() * 0.9);
}

TEST(MultiDevice, LinksAreIndependent) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(1);
  const auto buf = ctx.create_virtual_buffer(16 << 20);
  ctx.stream(0, 0).enqueue_h2d(buf, 0, 16 << 20);
  ctx.stream(1, 0).enqueue_h2d(buf, 0, 16 << 20);
  ctx.synchronize();
  // Transfers to different cards overlap: H2D busy-time sum exceeds span.
  const auto& tl = ctx.timeline();
  EXPECT_GT(tl.overlap(trace::SpanKind::H2D, trace::SpanKind::H2D), sim::SimTime::zero());
}

TEST(MultiDevice, SameCardTransfersStillSerialize) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(2);
  const auto buf = ctx.create_virtual_buffer(16 << 20);
  ctx.stream(0, 0).enqueue_h2d(buf, 0, 8 << 20);
  ctx.stream(0, 1).enqueue_h2d(buf, 8 << 20, 8 << 20);
  ctx.synchronize();
  EXPECT_EQ(ctx.timeline().overlap(trace::SpanKind::H2D, trace::SpanKind::H2D),
            sim::SimTime::zero());
}

TEST(MultiDevice, CrossDeviceSyncCostsMore) {
  Context one(sim::SimConfig::phi_31sp());
  one.setup(2);
  one.synchronize();
  const auto t1 = one.host_time();
  one.synchronize();
  const auto single_sync = one.host_time() - t1;

  Context two(sim::SimConfig::phi_31sp_x2());
  two.setup(1);  // also 2 streams total
  two.synchronize();
  const auto t2 = two.host_time();
  two.synchronize();
  const auto cross_sync = two.host_time() - t2;

  EXPECT_GT(cross_sync, single_sync);
}

TEST(MultiDevice, PerDeviceShadowsDivergeUntilExplicitTransfer) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(1);
  std::vector<float> host{1.0f, 2.0f};
  const auto buf = ctx.create_buffer(std::span<float>(host));
  ctx.stream(0, 0).enqueue_h2d(buf, 0, 8);
  ctx.synchronize();
  // Card 1 never received the data.
  EXPECT_FLOAT_EQ(ctx.device_ptr<float>(buf, 0)[1], 2.0f);
  EXPECT_FLOAT_EQ(ctx.device_ptr<float>(buf, 1)[1], 0.0f);
  // Route through the host: D2H from card 0 (a no-op here since host is the
  // source of truth), then H2D to card 1.
  ctx.stream(0, 0).enqueue_d2h(buf, 0, 8);
  ctx.stream(1, 0).enqueue_h2d(buf, 0, 8, {ctx.stream(0, 0).last_event()});
  ctx.synchronize();
  EXPECT_FLOAT_EQ(ctx.device_ptr<float>(buf, 1)[1], 2.0f);
}

TEST(MultiDevice, FourCardsScaleOut) {
  sim::SimConfig cfg = sim::SimConfig::phi_31sp();
  cfg.num_devices = 4;
  Context ctx(cfg);
  ctx.setup(2);
  EXPECT_EQ(ctx.stream_count(), 8);
  for (int d = 0; d < 4; ++d) {
    ctx.stream(d, 0).enqueue_kernel({"k", work(1e8), {}});
  }
  ctx.synchronize();
  // All four kernels ran concurrently: starts within the enqueue stagger
  // (three later enqueues at ~15 us each).
  const auto& spans = ctx.timeline().spans();
  ASSERT_EQ(spans.size(), 4u);
  for (const auto& s : spans) {
    EXPECT_LT((s.start - spans[0].start).micros(), 100.0);
  }
}

}  // namespace
}  // namespace ms::rt
