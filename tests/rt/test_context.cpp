#include "rt/context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rt/errors.hpp"

namespace ms::rt {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

TEST(Context, StartsWithOneStreamPerDevice) {
  Context ctx(cfg());
  EXPECT_EQ(ctx.device_count(), 1);
  EXPECT_EQ(ctx.stream_count(), 1);
  EXPECT_EQ(ctx.partitions_per_device(), 1);
}

TEST(Context, SetupCreatesOneStreamPerPartition) {
  Context ctx(cfg());
  ctx.setup(4);
  EXPECT_EQ(ctx.stream_count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctx.stream(i).index(), i);
    EXPECT_EQ(ctx.stream(i).device(), 0);
    EXPECT_EQ(ctx.stream(i).partition(), i);
  }
}

TEST(Context, SetupChargesHostTime) {
  Context ctx(cfg());
  const auto t0 = ctx.host_time();
  ctx.setup(8);
  EXPECT_GT(ctx.host_time(), t0);
}

TEST(Context, SetupRepartitionsDevice) {
  Context ctx(cfg());
  ctx.setup(7);
  EXPECT_EQ(ctx.platform().device(0).partitions(), 7);
  EXPECT_EQ(ctx.platform().device(0).partition(0).threads(), 32);
}

TEST(Context, StreamIndexOutOfRangeThrows) {
  Context ctx(cfg());
  ctx.setup(2);
  EXPECT_THROW((void)ctx.stream(2), Error);
  EXPECT_THROW((void)ctx.stream(-1), Error);
  EXPECT_THROW((void)ctx.stream(0, 2), Error);
  EXPECT_THROW((void)ctx.stream(1, 0), Error);
}

TEST(Context, SetupWithInvalidPartitionCountThrows) {
  Context ctx(cfg());
  EXPECT_THROW(ctx.setup(0), Error);
}

TEST(Context, SynchronizeOnEmptyContextAdvancesClockOnly) {
  Context ctx(cfg());
  const auto t0 = ctx.host_time();
  ctx.synchronize();
  EXPECT_GT(ctx.host_time(), t0);  // sync overhead
}

TEST(Context, HostTimeMonotone) {
  Context ctx(cfg());
  std::vector<float> data(1024, 1.0f);
  auto prev = ctx.host_time();
  const auto buf = ctx.create_buffer(std::span<float>(data));
  EXPECT_GT(ctx.host_time(), prev);
  prev = ctx.host_time();
  ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  EXPECT_GT(ctx.host_time(), prev);
  prev = ctx.host_time();
  ctx.synchronize();
  EXPECT_GE(ctx.host_time(), prev);
}

TEST(Context, SetupWhileStreamsBusyThrows) {
  Context ctx(cfg());
  std::vector<float> data(1024, 1.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  EXPECT_THROW(ctx.setup(2), Error);
  ctx.synchronize();
  EXPECT_NO_THROW(ctx.setup(2));
}

TEST(Context, TracingToggleSuppressesSpans) {
  Context ctx(cfg());
  ctx.set_tracing(false);
  std::vector<float> data(64, 0.0f);
  const auto buf = ctx.create_buffer(std::span<float>(data));
  ctx.stream(0).enqueue_h2d(buf, 0, 256);
  ctx.synchronize();
  EXPECT_TRUE(ctx.timeline().empty());
  ctx.set_tracing(true);
  ctx.stream(0).enqueue_h2d(buf, 0, 256);
  ctx.synchronize();
  EXPECT_EQ(ctx.timeline().size(), 1u);
}

TEST(Context, MultiDeviceStreamLayout) {
  Context ctx(sim::SimConfig::phi_31sp_x2());
  ctx.setup(3);
  EXPECT_EQ(ctx.device_count(), 2);
  EXPECT_EQ(ctx.stream_count(), 6);
  EXPECT_EQ(ctx.stream(4).device(), 1);
  EXPECT_EQ(ctx.stream(4).partition(), 1);
  EXPECT_EQ(ctx.stream(1, 2).index(), 5);
}

}  // namespace
}  // namespace ms::rt
