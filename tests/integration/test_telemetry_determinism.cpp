// The telemetry layer's core contract: host-side observation must never
// perturb the virtual experiment. Every app must produce bit-identical
// virtual times and checksums whether metrics recording is on or off, and
// metric totals must not depend on how many threads did the recording.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/cf_app.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/lu_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"
#include "sim/sweep.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

/// Run `fn` once with metrics off and once with metrics on; both runs must
/// be bit-identical in virtual time, checksum, and span count.
template <typename Fn>
void expect_invariant_under_telemetry(Fn&& fn) {
  telemetry::set_enabled(false);
  const AppResult off = fn();
  telemetry::set_enabled(true);
  const AppResult on = fn();
  telemetry::set_enabled(false);
  if (telemetry::kCompiledIn) telemetry::clear_spans();

  EXPECT_DOUBLE_EQ(off.ms, on.ms);
  EXPECT_DOUBLE_EQ(off.checksum, on.checksum);
  EXPECT_EQ(off.timeline.size(), on.timeline.size());
}

TEST(TelemetryDeterminism, Mm) {
  MmConfig c;
  c.dim = 64;
  c.tile_grid = 2;
  expect_invariant_under_telemetry([&] { return MmApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Cf) {
  CfConfig c;
  c.dim = 48;
  c.tile = 16;
  expect_invariant_under_telemetry([&] { return CfApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Lu) {
  LuConfig c;
  c.dim = 48;
  c.tile = 16;
  expect_invariant_under_telemetry([&] { return LuApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Kmeans) {
  KmeansConfig c;
  c.points = 500;
  c.dims = 4;
  c.clusters = 3;
  c.iterations = 3;
  c.tiles = 2;
  expect_invariant_under_telemetry([&] { return KmeansApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Hotspot) {
  HotspotConfig c;
  c.rows = c.cols = 32;
  c.tile_rows = c.tile_cols = 16;
  c.steps = 3;
  expect_invariant_under_telemetry([&] { return HotspotApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Nn) {
  NnConfig c;
  c.records = 1000;
  c.tiles = 4;
  expect_invariant_under_telemetry([&] { return NnApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, Srad) {
  SradConfig c;
  c.rows = c.cols = 32;
  c.tile_rows = c.tile_cols = 16;
  c.iterations = 2;
  expect_invariant_under_telemetry([&] { return SradApp::run(cfg(), c); });
}

TEST(TelemetryDeterminism, TotalsIndependentOfThreadCount) {
  // Counter shards and histogram buckets merge by addition, so the totals a
  // sweep records are exact and identical no matter how many threads split
  // the work: {serial, 2 workers, one per hardware thread}.
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::set_enabled(true);

  telemetry::Counter& c =
      telemetry::registry().counter("ms_test_sweep_total", "thread-count invariance test");
  telemetry::Histogram& h =
      telemetry::registry().histogram("ms_test_sweep_ns", "thread-count invariance test");

  constexpr std::size_t kJobs = 300;
  std::vector<telemetry::HistogramSnapshot> snaps;
  std::vector<std::uint64_t> counts;
  for (const int threads : {1, 2, 0}) {
    c.reset();
    h.reset();
    sim::SweepOptions opt;
    opt.threads = threads;
    sim::parallel_for(
        kJobs,
        [&](std::size_t i) {
          c.add(1);
          h.observe(static_cast<std::uint64_t>(i) % 1000);
        },
        opt);
    counts.push_back(c.value());
    snaps.push_back(h.snapshot());
  }
  telemetry::set_enabled(false);

  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], kJobs) << "thread config #" << i;
    EXPECT_EQ(snaps[i].count(), kJobs) << "thread config #" << i;
    EXPECT_EQ(snaps[i].sum, snaps[0].sum) << "thread config #" << i;
    EXPECT_EQ(snaps[i].buckets, snaps[0].buckets) << "thread config #" << i;
  }
}

}  // namespace
}  // namespace ms::apps
