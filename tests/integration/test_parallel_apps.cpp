// End-to-end invariant of the parallel engine: every app produces
// bit-identical virtual times, checksums, and span counts on the sharded
// engine — at 1, 2, and all hardware worker threads, and at 1..3 devices.
// MS_PAR_ENGINE is the production switch, so that is what these tests flip.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/cf_app.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/lu_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg(int devices) {
  sim::SimConfig c = sim::SimConfig::phi_31sp();
  c.num_devices = devices;
  return c;
}

/// RAII guard for the engine-selection environment.
struct ParEnv {
  explicit ParEnv(int threads) {
    setenv("MS_PAR_ENGINE", "1", 1);
    setenv("MS_PAR_THREADS", std::to_string(threads).c_str(), 1);
  }
  ~ParEnv() {
    unsetenv("MS_PAR_ENGINE");
    unsetenv("MS_PAR_THREADS");
  }
};

/// Run `app` serially, then on the parallel engine at several worker counts;
/// everything observable must match bit-for-bit.
template <typename App, typename Config>
void expect_parallel_matches_serial(const Config& app_cfg, int devices) {
  const AppResult serial = App::run(cfg(devices), app_cfg);
  for (int threads : {1, 2, 0}) {
    ParEnv env(threads);
    const AppResult par = App::run(cfg(devices), app_cfg);
    EXPECT_DOUBLE_EQ(serial.ms, par.ms) << "devices=" << devices << " threads=" << threads;
    EXPECT_DOUBLE_EQ(serial.checksum, par.checksum)
        << "devices=" << devices << " threads=" << threads;
    EXPECT_EQ(serial.timeline.size(), par.timeline.size())
        << "devices=" << devices << " threads=" << threads;
  }
}

TEST(ParallelApps, Mm) {
  MmConfig mc;
  mc.dim = 64;
  mc.tile_grid = 2;
  for (int devices : {1, 2, 3}) expect_parallel_matches_serial<MmApp>(mc, devices);
}

TEST(ParallelApps, Cf) {
  CfConfig cc;
  cc.dim = 48;
  cc.tile = 16;
  for (int devices : {1, 2}) expect_parallel_matches_serial<CfApp>(cc, devices);
}

TEST(ParallelApps, Lu) {
  LuConfig lc;
  lc.dim = 64;
  lc.tile = 32;
  for (int devices : {1, 2}) expect_parallel_matches_serial<LuApp>(lc, devices);
}

TEST(ParallelApps, Kmeans) {
  KmeansConfig kc;
  kc.points = 500;
  kc.dims = 4;
  kc.clusters = 3;
  kc.iterations = 3;
  kc.tiles = 2;
  for (int devices : {1, 2}) expect_parallel_matches_serial<KmeansApp>(kc, devices);
}

TEST(ParallelApps, Hotspot) {
  HotspotConfig hc;
  hc.rows = hc.cols = 32;
  hc.tile_rows = hc.tile_cols = 16;
  hc.steps = 3;
  for (int devices : {1, 2}) expect_parallel_matches_serial<HotspotApp>(hc, devices);
}

TEST(ParallelApps, Nn) {
  NnConfig nc;
  nc.records = 1000;
  nc.tiles = 4;
  for (int devices : {1, 2}) expect_parallel_matches_serial<NnApp>(nc, devices);
}

TEST(ParallelApps, Srad) {
  SradConfig sc;
  sc.rows = sc.cols = 32;
  sc.tile_rows = sc.tile_cols = 16;
  sc.iterations = 3;
  for (int devices : {1, 2, 3}) expect_parallel_matches_serial<SradApp>(sc, devices);
}

/// Graph replay modes ride the same engine; compiled batches shard across
/// LPs in parallel mode and must stay bit-identical too.
TEST(ParallelApps, MmCompiledGraphMode) {
  MmConfig mc;
  mc.dim = 64;
  mc.tile_grid = 2;
  mc.common.graph = GraphMode::Compiled;
  for (int devices : {1, 2}) expect_parallel_matches_serial<MmApp>(mc, devices);
}

}  // namespace
}  // namespace ms::apps
