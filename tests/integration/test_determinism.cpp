// The whole point of a virtual-time simulator: identical inputs give
// identical outputs — timings AND functional results — across repeated runs
// and regardless of unrelated configuration.

#include <gtest/gtest.h>

#include "apps/cf_app.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

TEST(Determinism, MmIsBitStable) {
  MmConfig mc;
  mc.dim = 64;
  mc.tile_grid = 2;
  const auto a = MmApp::run(cfg(), mc);
  const auto b = MmApp::run(cfg(), mc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.timeline.size(), b.timeline.size());
}

TEST(Determinism, CfIsBitStable) {
  CfConfig cc;
  cc.dim = 48;
  cc.tile = 16;
  const auto a = CfApp::run(cfg(), cc);
  const auto b = CfApp::run(cfg(), cc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Determinism, KmeansIsBitStable) {
  KmeansConfig kc;
  kc.points = 500;
  kc.dims = 4;
  kc.clusters = 3;
  kc.iterations = 3;
  kc.tiles = 2;
  const auto a = KmeansApp::run(cfg(), kc);
  const auto b = KmeansApp::run(cfg(), kc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Determinism, HotspotIsBitStable) {
  HotspotConfig hc;
  hc.rows = hc.cols = 32;
  hc.tile_rows = hc.tile_cols = 16;
  hc.steps = 3;
  const auto a = HotspotApp::run(cfg(), hc);
  const auto b = HotspotApp::run(cfg(), hc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Determinism, NnIsBitStable) {
  NnConfig nc;
  nc.records = 1000;
  nc.tiles = 4;
  const auto a = NnApp::run(cfg(), nc);
  const auto b = NnApp::run(cfg(), nc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Determinism, SradIsBitStable) {
  SradConfig sc;
  sc.rows = sc.cols = 32;
  sc.tile_rows = sc.tile_cols = 16;
  sc.iterations = 2;
  const auto a = SradApp::run(cfg(), sc);
  const auto b = SradApp::run(cfg(), sc);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Determinism, TimingOnlyAndFunctionalAgreeOnVirtualTime) {
  // The cost model must not depend on whether kernels actually execute.
  MmConfig mc;
  mc.dim = 96;
  mc.tile_grid = 3;
  mc.common.functional = true;
  const auto fun = MmApp::run(cfg(), mc);
  mc.common.functional = false;
  const auto tim = MmApp::run(cfg(), mc);
  EXPECT_DOUBLE_EQ(fun.ms, tim.ms);
}

TEST(Determinism, UnrelatedTracingDoesNotChangeTiming) {
  // Tracing is observational only.
  rt::Context with(cfg());
  rt::Context without(cfg());
  without.set_tracing(false);
  const auto buf_a = with.create_virtual_buffer(1 << 20);
  const auto buf_b = without.create_virtual_buffer(1 << 20);
  with.stream(0).enqueue_h2d(buf_a, 0, 1 << 20);
  without.stream(0).enqueue_h2d(buf_b, 0, 1 << 20);
  with.synchronize();
  without.synchronize();
  EXPECT_DOUBLE_EQ((with.host_time() - without.host_time()).micros(), 0.0);
}

}  // namespace
}  // namespace ms::apps
