// Integration contract of the kernel execution engine (kern::par):
//
//  * Virtual time comes from the cost model alone — running the functional
//    kernels serially vs. parallel must not move a single virtual-time bit,
//    and every checksum must match bit-for-bit too (the engine's fixed
//    decomposition + fixed reduction at work through whole applications).
//  * The engine nests inside the sweep layer: a parallel_map over sweep
//    points whose jobs launch parallel kernels (the shape that used to
//    deadlock the shared pool) produces the same numbers as a serial sweep.
//  * The Fig. 8 small-grid suite: every ported app, streamed vs. the
//    "w/o streams" baseline, functional, at sizes where the kernels carry
//    real work — the two ports must agree on results.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"
#include "kern/par.hpp"
#include "sim/sweep.hpp"

namespace ms::apps {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

/// Runs `app()` once with the engine forced serial and once with the default
/// worker count; virtual time and checksum must be bit-equal.
template <typename Fn>
void expect_engine_invariant(Fn&& app, const char* label) {
  AppResult serial, parallel;
  {
    kern::par::ThreadScope scope(1);
    serial = app();
  }
  parallel = app();
  EXPECT_DOUBLE_EQ(serial.ms, parallel.ms) << label << ": virtual time moved";
  EXPECT_DOUBLE_EQ(serial.checksum, parallel.checksum) << label << ": checksum moved";
  EXPECT_EQ(serial.timeline.size(), parallel.timeline.size()) << label;
}

TEST(KernelEngine, Fig9aVirtualTimesUnchangedByParallelKernels) {
  // Fig. 9(a)-shaped partition sweep of the MM app: the curve must be the
  // same, point for point, whether kernels execute serially or on the engine.
  for (const int partitions : {1, 2, 4, 7}) {
    MmConfig mc;
    mc.dim = 96;
    mc.tile_grid = 2;
    mc.common.partitions = partitions;
    expect_engine_invariant([&] { return MmApp::run(cfg(), mc); }, "mm");
  }
}

TEST(KernelEngine, VirtualTimesUnchangedAcrossApps) {
  HotspotConfig hc;
  hc.rows = hc.cols = 96;
  hc.tile_rows = hc.tile_cols = 48;
  hc.steps = 3;
  expect_engine_invariant([&] { return HotspotApp::run(cfg(), hc); }, "hotspot");

  SradConfig sc;
  sc.rows = sc.cols = 64;
  sc.tile_rows = sc.tile_cols = 32;
  sc.iterations = 2;
  expect_engine_invariant([&] { return SradApp::run(cfg(), sc); }, "srad");

  NnConfig nc;
  nc.records = 4096;
  nc.tiles = 4;
  expect_engine_invariant([&] { return NnApp::run(cfg(), nc); }, "nn");

  KmeansConfig kc;
  kc.points = 2000;
  kc.dims = 8;
  kc.clusters = 4;
  kc.iterations = 3;
  kc.tiles = 2;
  expect_engine_invariant([&] { return KmeansApp::run(cfg(), kc); }, "kmeans");
}

TEST(KernelEngine, ParallelSweepOverParallelKernelsMatchesSerial) {
  // Sweep jobs that launch parallel kernels: the nested shape. Results must
  // equal a serial sweep with serial kernels, bit for bit.
  const std::vector<int> partitions{1, 2, 3, 5};
  auto point = [&](std::size_t i) {
    MmConfig mc;
    mc.dim = 64;
    mc.tile_grid = 2;
    mc.common.partitions = partitions[i];
    mc.common.tracing = false;
    const AppResult r = MmApp::run(cfg(), mc);
    return std::pair<double, double>{r.ms, r.checksum};
  };

  std::vector<std::pair<double, double>> serial(partitions.size());
  {
    kern::par::ThreadScope scope(1);
    for (std::size_t i = 0; i < partitions.size(); ++i) serial[i] = point(i);
  }
  const auto swept = sim::parallel_map<std::pair<double, double>>(partitions.size(), point);
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].first, swept[i].first) << "P=" << partitions[i];
    EXPECT_DOUBLE_EQ(serial[i].second, swept[i].second) << "P=" << partitions[i];
  }
}

// --- Fig. 8 small-grid functional suite -----------------------------------
// Streamed vs. non-streamed ports must compute the same answers. Sizes are
// chosen so the functional kernels do real work (several engine blocks for
// MM) while the whole suite stays test-suite fast.

TEST(KernelEngine, Fig8SmallGridMm) {
  MmConfig mc;
  mc.dim = 256;
  mc.tile_grid = 2;
  const auto streamed = MmApp::run(cfg(), mc);
  mc.common.streamed = false;
  const auto baseline = MmApp::run(cfg(), mc);
  EXPECT_NEAR(streamed.checksum, baseline.checksum,
              1e-9 * std::abs(baseline.checksum));
}

TEST(KernelEngine, Fig8SmallGridHotspot) {
  HotspotConfig hc;
  hc.rows = hc.cols = 128;
  hc.tile_rows = hc.tile_cols = 64;
  hc.steps = 5;
  const auto streamed = HotspotApp::run(cfg(), hc);
  hc.common.streamed = false;
  const auto baseline = HotspotApp::run(cfg(), hc);
  // The step update is tiling-exact (same expression on every path).
  EXPECT_DOUBLE_EQ(streamed.checksum, baseline.checksum);
}

TEST(KernelEngine, Fig8SmallGridNn) {
  NnConfig nc;
  nc.records = 1u << 15;
  nc.tiles = 8;
  const auto streamed = NnApp::run(cfg(), nc);
  nc.common.streamed = false;
  const auto baseline = NnApp::run(cfg(), nc);
  // Top-k merge is exact regardless of chunking.
  EXPECT_DOUBLE_EQ(streamed.checksum, baseline.checksum);
}

TEST(KernelEngine, Fig8SmallGridKmeans) {
  KmeansConfig kc;
  kc.points = 6000;
  kc.dims = 16;
  kc.clusters = 6;
  kc.iterations = 5;
  kc.tiles = 4;
  const auto streamed = KmeansApp::run(cfg(), kc);
  kc.common.streamed = false;
  const auto baseline = KmeansApp::run(cfg(), kc);
  EXPECT_NEAR(streamed.checksum, baseline.checksum, 1e-4 * std::abs(baseline.checksum));
}

TEST(KernelEngine, Fig8SmallGridSrad) {
  SradConfig sc;
  sc.rows = sc.cols = 128;
  sc.tile_rows = sc.tile_cols = 64;
  sc.iterations = 4;
  const auto streamed = SradApp::run(cfg(), sc);
  sc.common.streamed = false;
  const auto baseline = SradApp::run(cfg(), sc);
  EXPECT_NEAR(streamed.checksum, baseline.checksum, 1e-4 * std::abs(baseline.checksum));
}

}  // namespace
}  // namespace ms::apps
