// Integration tests pinning the paper's six concluding observations
// (Section VII) at test-friendly scales. The bench harness reproduces the
// full figures; these tests keep the *claims* from regressing.

#include <gtest/gtest.h>

#include "apps/cf_app.hpp"
#include "apps/hbench.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "rt/tuner.hpp"

namespace ms {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

TEST(PaperClaims, C1_TransfersBothDirectionsSerialize) {
  // "The data transfers in both directions on Phi cannot run concurrently."
  const double one_way = apps::HBench::transfer_pattern(cfg(), 16, 0, 1 << 20);
  const double both = apps::HBench::transfer_pattern(cfg(), 16, 16, 1 << 20);
  EXPECT_NEAR(both / one_way, 2.0, 0.1);  // sum, not max
}

TEST(PaperClaims, C2_TransfersOverlapKernelsButNotFully) {
  // "Data transferring on Phi overlaps kernel execution, but the full
  // overlap seems not achievable."
  const auto p = apps::HBench::overlap(cfg(), 4u << 20, 40, 4, 8);
  EXPECT_LT(p.streamed_ms, 0.95 * p.serial_ms);
  EXPECT_GT(p.streamed_ms, 1.05 * p.ideal_ms);
}

TEST(PaperClaims, C3_SpatialSharingAloneDoesNotHelp) {
  // "Using multiple streams might not lead to a performance increase only in
  // the presence of spatial resource sharing."
  const double ref = apps::HBench::spatial_ref(cfg(), 100, 4u << 20);
  const auto rec = rt::Tuner::partition_candidates(cfg().device);
  for (const int p : rec) {
    EXPECT_GT(apps::HBench::spatial(cfg(), p, 128, 100, 4u << 20), ref) << p;
  }
}

TEST(PaperClaims, C4_OverlappableAppsBenefitAtScale) {
  // "Being overlappable is a must for benefits" — MM (overlappable) gains
  // from streams at paper scale (Fig. 8(a): +8.3% on average).
  apps::MmConfig mc;
  mc.dim = 6000;
  mc.tile_grid = 4;
  mc.common.partitions = 4;
  mc.common.functional = false;
  const auto streamed = apps::MmApp::run(cfg(), mc);
  mc.common.streamed = false;
  const auto baseline = apps::MmApp::run(cfg(), mc);
  EXPECT_LT(streamed.ms, baseline.ms);
  const double gain = (baseline.ms - streamed.ms) / baseline.ms;
  EXPECT_GT(gain, 0.03);
  EXPECT_LT(gain, 0.40);
}

TEST(PaperClaims, C4b_CfGainsMoreThanMm) {
  // Fig. 8: CF improves ~24% vs MM ~8% — CF has more pipeline stages to
  // overlap. Require CF's relative gain to exceed MM's.
  apps::MmConfig mc;
  mc.dim = 6000;
  mc.tile_grid = 4;
  mc.common.partitions = 4;
  mc.common.functional = false;
  const double mm_s = apps::MmApp::run(cfg(), mc).ms;
  mc.common.streamed = false;
  const double mm_b = apps::MmApp::run(cfg(), mc).ms;

  apps::CfConfig cc;
  cc.dim = 9600;
  cc.tile = 960;
  cc.common.partitions = 4;
  cc.common.functional = false;
  const double cf_s = apps::CfApp::run(cfg(), cc).ms;
  cc.common.streamed = false;
  const double cf_b = apps::CfApp::run(cfg(), cc).ms;

  const double mm_gain = (mm_b - mm_s) / mm_b;
  const double cf_gain = (cf_b - cf_s) / cf_b;
  EXPECT_GT(cf_gain, mm_gain);
}

TEST(PaperClaims, C5_TaskAndResourceGranularityMatter) {
  // "Both task granularity and resource granularity have a large impact."
  // Sweep T for MM at fixed P: the spread between best and worst must be
  // substantial (Fig. 10(a)).
  apps::MmConfig mc;
  mc.dim = 6000;
  mc.common.partitions = 4;
  mc.common.functional = false;
  double best = 1e300;
  double worst = 0.0;
  for (const int g : {1, 2, 4, 10, 20}) {  // T = 1..400
    mc.tile_grid = g;
    const double ms = apps::MmApp::run(cfg(), mc).ms;
    best = std::min(best, ms);
    worst = std::max(worst, ms);
  }
  EXPECT_GT(worst / best, 1.15);
}

TEST(PaperClaims, C7_TwoMicsFasterButBelowProjection) {
  // Section VI / Fig. 11: two cards beat one, but stay under 2x.
  apps::CfConfig cc;
  cc.dim = 4800;
  cc.tile = 480;
  cc.common.partitions = 4;
  cc.common.functional = false;
  const double one = apps::CfApp::run(sim::SimConfig::phi_31sp(), cc).ms;
  const double two = apps::CfApp::run(sim::SimConfig::phi_31sp_x2(), cc).ms;
  EXPECT_LT(two, one);            // faster
  EXPECT_GT(two, one / 2.0);      // but below the 2x projection
}

TEST(PaperClaims, DivisorPartitionsBeatNeighborsForMm) {
  // Fig. 9(a): P in {2,4,7,8,14,28,56} runs "much faster" than neighbours.
  apps::MmConfig mc;
  mc.dim = 6000;
  mc.tile_grid = 10;  // plenty of tasks for any P
  mc.common.functional = false;
  auto run_p = [&](int p) {
    mc.common.partitions = p;
    return apps::MmApp::run(cfg(), mc).ms;
  };
  EXPECT_LT(run_p(28), run_p(27));
  EXPECT_LT(run_p(28), run_p(29));
  EXPECT_LT(run_p(14), run_p(13));
  EXPECT_LT(run_p(14), run_p(15));
}

}  // namespace
}  // namespace ms
