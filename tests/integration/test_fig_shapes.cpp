// Figure-shape regression tests: full-scale timing-model runs asserting the
// qualitative features EXPERIMENTS.md documents per figure, so calibration
// changes that would bend a paper shape fail loudly here rather than being
// noticed in the bench output.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/cf_app.hpp"
#include "apps/hbench.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/srad_app.hpp"

namespace ms {
namespace {

sim::SimConfig cfg() { return sim::SimConfig::phi_31sp(); }

apps::CommonConfig sweep_common(int partitions) {
  apps::CommonConfig c;
  c.partitions = partitions;
  c.functional = false;
  c.tracing = false;
  c.protocol_iterations = 1;
  return c;
}

TEST(FigShapes, Fig5LinesAreLinearInBlocks) {
  // IC rises and CD falls by the same per-block increment.
  const double b0 = apps::HBench::transfer_pattern(cfg(), 0, 16, 1 << 20);
  const double b8 = apps::HBench::transfer_pattern(cfg(), 8, 16, 1 << 20);
  const double b16 = apps::HBench::transfer_pattern(cfg(), 16, 16, 1 << 20);
  EXPECT_NEAR(b8 - b0, b16 - b8, 0.05);
  EXPECT_NEAR((b16 - b0) / 16.0, 0.165, 0.03);  // ~1 MiB / 6.4 GiB/s + setup
}

TEST(FigShapes, Fig9bCfDivisorPeaksAtSmallP) {
  // CF's divisor structure only shows where the factorization DAG has
  // enough width to keep the partitions busy (small P); at large P the
  // wavefront's idle time swamps the per-task contention differences —
  // recorded as a deviation in EXPERIMENTS.md.
  apps::CfConfig cc;
  cc.common = sweep_common(4);
  cc.dim = 9600;
  cc.tile = 800;
  auto at = [&](int p) {
    cc.common.partitions = p;
    return apps::CfApp::run(cfg(), cc).gflops;
  };
  EXPECT_GT(at(2), at(3));  // 2 divides 56, 3 does not
  EXPECT_GT(at(4), at(3));
  EXPECT_GT(at(4), at(5));
}

TEST(FigShapes, Fig9dHotspotPlateauIsLow) {
  apps::HotspotConfig hc;
  hc.common = sweep_common(4);
  hc.rows = hc.cols = 16384;
  hc.tile_rows = hc.tile_cols = 1024;
  hc.steps = 50;
  auto at = [&](int p) {
    hc.common.partitions = p;
    return apps::HotspotApp::run(cfg(), hc).ms;
  };
  // The narrow-partition plateau (locality bonus region) beats wide and
  // very fragmented configurations.
  const double plateau = std::min({at(28), at(33), at(35), at(37)});
  EXPECT_LT(plateau, at(16));
  EXPECT_LT(plateau, at(48));
}

TEST(FigShapes, Fig10cKmeansTileUShape) {
  apps::KmeansConfig kc;
  kc.common = sweep_common(4);
  kc.points = 1120000;
  kc.iterations = 100;
  auto at = [&](int t) {
    kc.tiles = t;
    return apps::KmeansApp::run(cfg(), kc).ms;
  };
  const double t1 = at(1);
  const double t4 = at(4);
  const double t224 = at(224);
  EXPECT_LT(t4, t1);    // under-tiling starves partitions
  EXPECT_LT(t4, t224);  // over-tiling drowns in overheads
}

TEST(FigShapes, Fig8fSradCrossoverPersists) {
  apps::SradConfig sc;
  sc.common = sweep_common(4);
  sc.iterations = 100;
  auto gain = [&](std::size_t d, std::size_t grid) {
    sc.rows = sc.cols = d;
    sc.tile_rows = sc.tile_cols = d / grid;
    sc.common.streamed = true;
    const double streamed = apps::SradApp::run(cfg(), sc).ms;
    sc.common.streamed = false;
    const double baseline = apps::SradApp::run(cfg(), sc).ms;
    return (baseline - streamed) / baseline;
  };
  EXPECT_LT(gain(1000, 2), 0.05);  // small image: no meaningful win
  EXPECT_GT(gain(10000, 4), 0.1);  // large image: clear win (few big tiles)
}

TEST(FigShapes, Fig7MinimumIsInteriorAndAboveRef) {
  std::vector<double> times;
  for (const int p : {1, 8, 128}) {
    times.push_back(apps::HBench::spatial(cfg(), p, 128, 100, 4u << 20));
  }
  const double ref = apps::HBench::spatial_ref(cfg(), 100, 4u << 20);
  EXPECT_LT(times[1], times[0]);
  EXPECT_LT(times[1], times[2]);
  EXPECT_GT(times[1], ref);
}

}  // namespace
}  // namespace ms
