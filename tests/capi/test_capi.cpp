#include "capi/mstream_capi.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

/// RAII guard so a failing test cannot leak the global context into the
/// next one.
struct CApiSession {
  explicit CApiSession(int partitions) { EXPECT_EQ(mstream_app_init(partitions), MSTREAM_SUCCESS); }
  ~CApiSession() { mstream_app_fini(); }
};

struct SaxpyArgs {
  const float* a;
  float* b;
  size_t n;
  float alpha;
};

// A C-style kernel: resolves registered host pointers to device shadows.
void saxpy_kernel(void* arg, mstream_resolve_fn resolve) {
  auto* args = static_cast<SaxpyArgs*>(arg);
  const auto* a = static_cast<const float*>(resolve(args->a));
  auto* b = static_cast<float*>(resolve(args->b));
  for (size_t i = 0; i < args->n; ++i) b[i] = a[i] + args->alpha;
}

TEST(CApi, InitAndFiniLifecycle) {
  EXPECT_EQ(mstream_app_init(4), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_stream_count(), 4);
  EXPECT_EQ(mstream_app_init(4), MSTREAM_ERR_ALREADY_INITIALIZED);
  EXPECT_EQ(mstream_app_fini(), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_app_fini(), MSTREAM_ERR_NOT_INITIALIZED);
}

TEST(CApi, RequiresInitialization) {
  float x = 0.0f;
  EXPECT_EQ(mstream_app_create_buf(&x, 4), MSTREAM_ERR_NOT_INITIALIZED);
  EXPECT_EQ(mstream_app_thread_sync(), MSTREAM_ERR_NOT_INITIALIZED);
  EXPECT_LT(mstream_stream_count(), 0);
  EXPECT_NE(mstream_last_error()[0], '\0');
}

TEST(CApi, InvalidInitArgs) {
  EXPECT_EQ(mstream_app_init(0), MSTREAM_ERR_BAD_ARGUMENT);
}

TEST(CApi, FullOffloadPipeline) {
  CApiSession session(4);

  std::vector<float> a(4096, 41.0f), b(4096, 0.0f);
  ASSERT_EQ(mstream_app_create_buf(a.data(), a.size() * sizeof(float)), MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_create_buf(b.data(), b.size() * sizeof(float)), MSTREAM_SUCCESS);

  mstream_event up = 0;
  ASSERT_EQ(mstream_app_xfer_memory(a.data(), a.size() * sizeof(float), 0, MSTREAM_HOST_TO_SINK,
                                    &up),
            MSTREAM_SUCCESS);

  SaxpyArgs args{a.data(), b.data(), a.size(), 1.0f};
  mstream_work work{};
  work.kind = MSTREAM_KERNEL_STREAMING;
  work.elems = static_cast<double>(a.size());
  mstream_event kernel_ev = 0;
  ASSERT_EQ(mstream_app_invoke(0, "saxpy", &work, &saxpy_kernel, &args, &up, 1, &kernel_ev),
            MSTREAM_SUCCESS);

  ASSERT_EQ(mstream_app_xfer_memory(b.data(), b.size() * sizeof(float), 0, MSTREAM_SINK_TO_HOST,
                                    nullptr),
            MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_thread_sync(), MSTREAM_SUCCESS);

  EXPECT_EQ(mstream_event_done(kernel_ev), 1);
  for (const float x : b) ASSERT_FLOAT_EQ(x, 42.0f);
  EXPECT_GT(mstream_virtual_time_ms(), 0.0);
}

TEST(CApi, InteriorPointersResolveToTheRightOffset) {
  CApiSession session(2);
  std::vector<float> buf(100, 0.0f);
  ASSERT_EQ(mstream_app_create_buf(buf.data(), buf.size() * sizeof(float)), MSTREAM_SUCCESS);
  buf[50] = 7.0f;
  // Transfer only the second half via an interior pointer.
  ASSERT_EQ(mstream_app_xfer_memory(buf.data() + 50, 50 * sizeof(float), 0,
                                    MSTREAM_HOST_TO_SINK, nullptr),
            MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_thread_sync(), MSTREAM_SUCCESS);
}

TEST(CApi, UnknownBufferIsReported) {
  CApiSession session(2);
  float unregistered[8] = {};
  EXPECT_EQ(mstream_app_xfer_memory(unregistered, sizeof(unregistered), 0, MSTREAM_HOST_TO_SINK,
                                    nullptr),
            MSTREAM_ERR_UNKNOWN_BUFFER);
  EXPECT_EQ(mstream_app_destroy_buf(unregistered), MSTREAM_ERR_UNKNOWN_BUFFER);
}

TEST(CApi, RangeOverflowingBufferIsRejected) {
  CApiSession session(2);
  std::vector<float> buf(16, 0.0f);
  ASSERT_EQ(mstream_app_create_buf(buf.data(), buf.size() * sizeof(float)), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_app_xfer_memory(buf.data() + 8, 9 * sizeof(float), 0, MSTREAM_HOST_TO_SINK,
                                    nullptr),
            MSTREAM_ERR_UNKNOWN_BUFFER);
}

TEST(CApi, DestroyBufThenUseFails) {
  CApiSession session(2);
  std::vector<float> buf(16, 0.0f);
  ASSERT_EQ(mstream_app_create_buf(buf.data(), buf.size() * sizeof(float)), MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_destroy_buf(buf.data()), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_app_xfer_memory(buf.data(), 4, 0, MSTREAM_HOST_TO_SINK, nullptr),
            MSTREAM_ERR_UNKNOWN_BUFFER);
}

TEST(CApi, UnknownDependencyEventRejected) {
  CApiSession session(2);
  mstream_work work{};
  const mstream_event bogus = 9999;
  EXPECT_EQ(mstream_app_invoke(0, "k", &work, nullptr, nullptr, &bogus, 1, nullptr),
            MSTREAM_ERR_BAD_ARGUMENT);
}

TEST(CApi, StreamSynchronizeAndEvents) {
  CApiSession session(2);
  mstream_work work{};
  work.kind = MSTREAM_KERNEL_STREAMING;
  work.elems = 1e6;
  mstream_event ev = 0;
  ASSERT_EQ(mstream_app_invoke(1, "idle", &work, nullptr, nullptr, nullptr, 0, &ev),
            MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_event_done(ev), 0);
  ASSERT_EQ(mstream_stream_synchronize(1), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_event_done(ev), 1);
  EXPECT_EQ(mstream_event_done(424242), -1);
}

TEST(CApi, BadStreamIndexSurfacesRuntimeError) {
  CApiSession session(2);
  mstream_work work{};
  EXPECT_EQ(mstream_app_invoke(7, "k", &work, nullptr, nullptr, nullptr, 0, nullptr),
            MSTREAM_ERR_RUNTIME);
  EXPECT_NE(mstream_last_error()[0], '\0');
}

TEST(CApi, GraphRecordAndReplay) {
  CApiSession session(2);
  std::vector<float> a(1024, 41.0f), b(1024, 0.0f);
  ASSERT_EQ(mstream_app_create_buf(a.data(), a.size() * sizeof(float)), MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_create_buf(b.data(), b.size() * sizeof(float)), MSTREAM_SUCCESS);

  mstream_graph g = 0;
  ASSERT_EQ(mstream_graph_create(&g), MSTREAM_SUCCESS);

  mstream_node up = 0;
  ASSERT_EQ(mstream_graph_add_xfer(g, 0, a.data(), a.size() * sizeof(float),
                                   MSTREAM_HOST_TO_SINK, nullptr, 0, &up),
            MSTREAM_SUCCESS);
  SaxpyArgs args{a.data(), b.data(), a.size(), 1.0f};
  mstream_work work{};
  work.kind = MSTREAM_KERNEL_STREAMING;
  work.elems = static_cast<double>(a.size());
  mstream_node k = 0;
  ASSERT_EQ(mstream_graph_add_kernel(g, 0, "saxpy", &work, &saxpy_kernel, &args, &up, 1, &k),
            MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_graph_add_xfer(g, 0, b.data(), b.size() * sizeof(float),
                                   MSTREAM_SINK_TO_HOST, &k, 1, nullptr),
            MSTREAM_SUCCESS);

  for (int i = 0; i < 3; ++i) {
    mstream_event done = 0;
    ASSERT_EQ(mstream_graph_launch(g, &done), MSTREAM_SUCCESS);
    ASSERT_EQ(mstream_app_thread_sync(), MSTREAM_SUCCESS);
    EXPECT_EQ(mstream_event_done(done), 1);
  }
  for (const float x : b) ASSERT_FLOAT_EQ(x, 42.0f);
  EXPECT_EQ(mstream_graph_destroy(g), MSTREAM_SUCCESS);
  EXPECT_EQ(mstream_graph_destroy(g), MSTREAM_ERR_BAD_ARGUMENT);
}

TEST(CApi, GraphErrorPaths) {
  CApiSession session(2);
  EXPECT_EQ(mstream_graph_create(nullptr), MSTREAM_ERR_BAD_ARGUMENT);
  EXPECT_EQ(mstream_graph_launch(777, nullptr), MSTREAM_ERR_BAD_ARGUMENT);

  mstream_graph g = 0;
  ASSERT_EQ(mstream_graph_create(&g), MSTREAM_SUCCESS);
  // Empty graph cannot launch.
  EXPECT_EQ(mstream_graph_launch(g, nullptr), MSTREAM_ERR_RUNTIME);
  // Unregistered host pointer.
  float stray[4] = {};
  EXPECT_EQ(mstream_graph_add_xfer(g, 0, stray, sizeof(stray), MSTREAM_HOST_TO_SINK, nullptr, 0,
                                   nullptr),
            MSTREAM_ERR_UNKNOWN_BUFFER);
  // Forward dependency.
  mstream_work work{};
  const mstream_node bogus = 42;
  EXPECT_EQ(mstream_graph_add_kernel(g, 0, "k", &work, nullptr, nullptr, &bogus, 1, nullptr),
            MSTREAM_ERR_RUNTIME);
}

TEST(CApi, TimingOnlyKernelAdvancesVirtualClock) {
  CApiSession session(4);
  const double before = mstream_virtual_time_ms();
  mstream_work work{};
  work.kind = MSTREAM_KERNEL_GEMM;
  work.flops = 1e9;
  ASSERT_EQ(mstream_app_invoke(0, "gemm", &work, nullptr, nullptr, nullptr, 0, nullptr),
            MSTREAM_SUCCESS);
  ASSERT_EQ(mstream_app_thread_sync(), MSTREAM_SUCCESS);
  EXPECT_GT(mstream_virtual_time_ms(), before + 1.0);  // ~1.7 ms of GEMM
}

}  // namespace
