// App-level linter coverage: the ported applications run under a LintCapture
// at small sizes and must come out clean (nn's transfer-bound duplex finding
// is the one designed exception), the critical-path bound must hold against
// the simulated time at 1..3 devices, linting must not perturb results, and
// the compile-time / tuner exposures must enforce and pre-prune.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/capture.hpp"
#include "analyze/perf_lint.hpp"
#include "analyze/report.hpp"
#include "apps/cf_app.hpp"
#include "apps/hbench.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/kmeans_async_app.hpp"
#include "apps/lu_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"
#include "rt/compiled_graph.hpp"
#include "rt/context.hpp"
#include "rt/errors.hpp"
#include "rt/graph.hpp"
#include "rt/tuner.hpp"
#include "sim/sim_config.hpp"

namespace {

using ms::analyze::Capture;
using ms::analyze::LintCapture;
namespace rule = ms::analyze::rule;

ms::sim::SimConfig cfg() { return ms::sim::SimConfig::phi_31sp(); }

ms::sim::SimConfig cfg_n(int devices) {
  ms::sim::SimConfig c = ms::sim::SimConfig::phi_31sp();
  c.num_devices = devices;
  return c;
}

/// Run under both analyzers: hazards must stay clean (the linter's ordering
/// rules assume that), the lint findings and bound checks are the caller's.
template <typename Fn>
ms::apps::AppResult run_linted(LintCapture& capture, Fn&& run) {
  Capture hazards;
  ms::apps::AppResult r = run();
  EXPECT_TRUE(hazards.clean()) << ms::analyze::text_report(hazards.result());
  return r;
}

/// Clean app + sound bound: no findings, and the summed per-segment makespan
/// lower bound never exceeds the summed simulated segment time.
template <typename Fn>
void expect_lint_clean(Fn&& run) {
  LintCapture capture;
  (void)run_linted(capture, run);
  EXPECT_TRUE(capture.clean()) << ms::analyze::text_report(capture);
  ASSERT_GT(capture.segments(), 0u);
  EXPECT_GT(capture.bound().micros(), 0.0);
  EXPECT_LE(capture.bound().micros(), capture.elapsed().micros());
  const double eff = capture.overlap_efficiency();
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 1.0);
}

TEST(LintApps, Mm) {
  ms::apps::MmConfig mc;
  mc.dim = 128;
  mc.tile_grid = 2;
  expect_lint_clean([&] { return ms::apps::MmApp::run(cfg(), mc); });
}

TEST(LintApps, Kmeans) {
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 3;
  kc.tiles = 4;
  expect_lint_clean([&] { return ms::apps::KmeansApp::run(cfg(), kc); });
}

TEST(LintApps, KmeansAsync) {
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 4;
  kc.tiles = 4;
  expect_lint_clean([&] { return ms::apps::KmeansAsyncApp::run(cfg(), kc); });
}

TEST(LintApps, Hotspot) {
  ms::apps::HotspotConfig hc;
  hc.rows = hc.cols = 64;
  hc.tile_rows = hc.tile_cols = 32;
  hc.steps = 3;
  expect_lint_clean([&] { return ms::apps::HotspotApp::run(cfg(), hc); });
}

TEST(LintApps, Srad) {
  ms::apps::SradConfig sc;
  sc.rows = sc.cols = 64;
  sc.tile_rows = sc.tile_cols = 32;
  sc.iterations = 3;
  expect_lint_clean([&] { return ms::apps::SradApp::run(cfg(), sc); });
}

TEST(LintApps, Cf) {
  ms::apps::CfConfig cc;
  cc.dim = 128;
  cc.tile = 64;
  expect_lint_clean([&] { return ms::apps::CfApp::run(cfg(), cc); });
}

TEST(LintApps, Lu) {
  ms::apps::LuConfig lc;
  lc.dim = 128;
  lc.tile = 64;
  expect_lint_clean([&] { return ms::apps::LuApp::run(cfg(), lc); });
}

TEST(LintApps, Nn) {
  // NN streams records up and distances back concurrently: it is genuinely
  // transfer-bound in both directions, so duplex-serialization is a true
  // positive by design (the CI waiver list carries it). Nothing else may
  // fire, and the bound must still hold.
  ms::apps::NnConfig nc;
  nc.records = 1u << 16;
  nc.tiles = 4;
  LintCapture capture;
  (void)run_linted(capture, [&] { return ms::apps::NnApp::run(cfg(), nc); });
  for (const ms::analyze::LintFinding& f : capture.findings()) {
    EXPECT_EQ(f.rule, rule::kDuplexSerialization) << f.message;
  }
  EXPECT_LE(capture.bound().micros(), capture.elapsed().micros());
}

TEST(LintApps, MultiDeviceCleanAndBounded) {
  for (const int devices : {2, 3}) {
    ms::apps::CfConfig cc;
    cc.dim = 128;
    cc.tile = 32;
    LintCapture capture;
    (void)run_linted(capture, [&] { return ms::apps::CfApp::run(cfg_n(devices), cc); });
    EXPECT_TRUE(capture.clean()) << ms::analyze::text_report(capture);
    EXPECT_EQ(capture.devices().size(), static_cast<std::size_t>(devices));
    EXPECT_LE(capture.bound().micros(), capture.elapsed().micros());
  }
}

TEST(LintApps, LuMultiDevice) {
  ms::apps::LuConfig lc;
  lc.dim = 128;
  lc.tile = 32;
  expect_lint_clean([&] { return ms::apps::LuApp::run(ms::sim::SimConfig::phi_31sp_x2(), lc); });
}

TEST(LintApps, BaselineKmeansIsSingleStreamPipeline) {
  // The non-streamed port is the paper's baseline anti-pattern: everything
  // on one stream, one H2D->EXE->D2H round per iteration.
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 3;
  kc.common.streamed = false;
  LintCapture capture;
  (void)run_linted(capture, [&] { return ms::apps::KmeansApp::run(cfg(), kc); });
  ASSERT_FALSE(capture.clean());
  bool pipeline = false;
  for (const ms::analyze::LintFinding& f : capture.findings()) {
    pipeline = pipeline || f.rule == rule::kSingleStreamPipeline;
  }
  EXPECT_TRUE(pipeline) << ms::analyze::text_report(capture);
}

TEST(LintApps, HbenchDuplexPatternIsFlagged) {
  // Fig. 5's mixed pattern: both directions at once on separate streams.
  LintCapture capture;
  Capture hazards;
  (void)ms::apps::HBench::transfer_pattern(cfg(), 8, 8, 1u << 20);
  ASSERT_FALSE(capture.clean());
  for (const ms::analyze::LintFinding& f : capture.findings()) {
    EXPECT_EQ(f.rule, rule::kDuplexSerialization) << f.message;
  }
}

TEST(LintApps, LintingDoesNotPerturbResults) {
  // Virtual times and checksums must be bit-identical with the linter on
  // (LintCapture installed) and off — linting is entirely passive.
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 3;
  kc.tiles = 4;
  ms::apps::SradConfig sc;
  sc.rows = sc.cols = 64;
  sc.tile_rows = sc.tile_cols = 32;
  sc.iterations = 3;

  const auto km_off = ms::apps::KmeansApp::run(cfg(), kc);
  const auto srad_off = ms::apps::SradApp::run(cfg(), sc);
  ms::apps::AppResult km_on, srad_on;
  {
    LintCapture capture;
    km_on = ms::apps::KmeansApp::run(cfg(), kc);
    srad_on = ms::apps::SradApp::run(cfg(), sc);
    EXPECT_TRUE(capture.clean()) << ms::analyze::text_report(capture);
  }
  EXPECT_EQ(km_on.ms, km_off.ms);
  EXPECT_EQ(km_on.checksum, km_off.checksum);
  EXPECT_EQ(srad_on.ms, srad_off.ms);
  EXPECT_EQ(srad_on.checksum, srad_off.checksum);
}

// --- Graph::compile exposure -------------------------------------------------

TEST(LintCompile, CleanGraphCompiles) {
  ms::rt::Context ctx(cfg());
  ctx.setup(4);
  const ms::rt::BufferId buf = ctx.create_virtual_buffer(1u << 20);
  ms::rt::Graph g;
  const auto up = g.add_h2d(0, buf, 0, 1u << 20);
  ms::rt::KernelLaunch launch;
  launch.label = "consume";
  launch.work.elems = 1 << 18;
  launch.reads(buf, 0, 1u << 20);
  const auto k = g.add_kernel(1, std::move(launch), {up});
  g.add_d2h(2, buf, 0, 1u << 20, {k});
  ms::rt::CompileOptions opts;
  opts.lint = true;
  EXPECT_NO_THROW((void)g.compile(ctx, opts));
}

TEST(LintCompile, RedundantUploadThrows) {
  ms::rt::Context ctx(cfg());
  ctx.setup(4);
  const ms::rt::BufferId buf = ctx.create_virtual_buffer(1u << 20);
  ms::rt::Graph g;
  g.add_h2d(0, buf, 0, 1u << 20);
  g.add_h2d(0, buf, 0, 1u << 20);  // nothing changed in between
  ms::rt::CompileOptions opts;
  opts.lint = true;
  try {
    (void)g.compile(ctx, opts);
    FAIL() << "expected rt::Error from the lint pass";
  } catch (const ms::rt::Error& e) {
    EXPECT_NE(std::string(e.what()).find("redundant-h2d"), std::string::npos) << e.what();
  }
  // Without the lint pass the same graph compiles (it is merely wasteful).
  EXPECT_NO_THROW((void)g.compile(ctx));
}

// --- Tuner exposure ----------------------------------------------------------

TEST(LintTuner, PrunesSplitCoreCandidates) {
  using ms::rt::Tuner;
  const std::vector<Tuner::Candidate> candidates = {{2, 8}, {5, 5}, {3, 3}, {56, 56}};
  const auto metric = [](Tuner::Candidate c) {
    return static_cast<double>(c.partitions + c.tiles);
  };
  const Tuner::Result r = Tuner::search_validated(candidates, metric, cfg().device);
  EXPECT_EQ(r.pruned, 2u);     // P=5 and P=3 split cores on 56
  EXPECT_EQ(r.evaluated, 2u);  // only the aligned shapes ran
  EXPECT_EQ(r.best.partitions, 2);
  EXPECT_EQ(r.best.tiles, 8);
}

TEST(LintTuner, AllPrunedThrows) {
  using ms::rt::Tuner;
  const std::vector<Tuner::Candidate> candidates = {{3, 3}, {5, 5}};
  const auto metric = [](Tuner::Candidate) { return 1.0; };
  EXPECT_THROW((void)Tuner::search_validated(candidates, metric, cfg().device), ms::rt::Error);
}

TEST(LintTuner, SpeclessOverloadStillEvaluatesEverything) {
  using ms::rt::Tuner;
  const std::vector<Tuner::Candidate> candidates = {{3, 3}, {2, 2}};
  const auto metric = [](Tuner::Candidate c) { return static_cast<double>(c.partitions); };
  const Tuner::Result r = Tuner::search_validated(candidates, metric);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_EQ(r.evaluated, 2u);
  EXPECT_EQ(r.best.partitions, 2);
}

}  // namespace
