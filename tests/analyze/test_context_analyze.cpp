// The runtime-facing side of the analyzer: an rt::Context with analysis
// enabled (ContextConfig::analyze, MS_ANALYZE=1, or an installed Capture)
// records every enqueue and reports hazards at synchronization points.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "analyze/capture.hpp"
#include "rt/context.hpp"
#include "rt/tuner.hpp"
#include "sim/chunk_depot.hpp"
#include "sim/sim_config.hpp"

namespace {

using ms::analyze::Capture;
using ms::analyze::HazardError;
using ms::analyze::HazardKind;
using ms::rt::BufferId;
using ms::rt::ContextConfig;
using ms::rt::MemRange;

ms::sim::SimConfig small_cfg() { return ms::sim::SimConfig::phi_31sp(); }

/// Two streams, overlapping device writes, no ordering edge.
void enqueue_racy(ms::rt::Context& ctx, BufferId buf) {
  ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  ctx.stream(1).enqueue_h2d(buf, 0, 4096);
}

TEST(ContextAnalyze, AbortModeThrowsAtSynchronize) {
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(4096);
  ctx.name_buffer(buf, "racy");
  enqueue_racy(ctx, buf);
  try {
    ctx.synchronize();
    FAIL() << "expected HazardError";
  } catch (const HazardError& e) {
    ASSERT_FALSE(e.analysis().clean());
    EXPECT_EQ(e.analysis().hazards[0].kind, HazardKind::RaceWAW);
    EXPECT_NE(std::string(e.what()).find("racy"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("missing edge"), std::string::npos);
  }
}

TEST(ContextAnalyze, AbortedContextStaysUsable) {
  // After the throw the recorder's segment is reset: the context can keep
  // enqueueing clean work, and teardown releases every pooled action.
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(4096);
  enqueue_racy(ctx, buf);
  EXPECT_THROW(ctx.synchronize(), HazardError);
  const auto ev = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
  ctx.stream(1).enqueue_d2h(buf, 0, 4096, {ev});
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(ContextAnalyze, AbortPathReleasesPooledActionsToDepot) {
  // Hazard-aborted contexts must hand their pooled Action/state chunks back
  // to the ChunkDepot like clean ones do: after destroying an aborted
  // context, the depot holds parked chunks a fresh context can reuse.
  ms::sim::detail::ChunkDepot::trim();
  {
    ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    enqueue_racy(ctx, buf);
    EXPECT_THROW(ctx.synchronize(), HazardError);
  }
  EXPECT_GT(ms::sim::detail::ChunkDepot::parked_bytes(), 0u);
  {
    // A fresh context runs fine on the recycled chunks.
    ms::rt::Context ctx(small_cfg());
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    const auto ev = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
    ctx.stream(1).enqueue_d2h(buf, 0, 4096, {ev});
    ctx.synchronize();
  }
  ms::sim::detail::ChunkDepot::trim();
  EXPECT_EQ(ms::sim::detail::ChunkDepot::parked_bytes(), 0u);
}

TEST(ContextAnalyze, EnvVarEnablesAnalysis) {
  ASSERT_EQ(setenv("MS_ANALYZE", "1", 1), 0);
  try {
    ms::rt::Context ctx(small_cfg());
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    enqueue_racy(ctx, buf);
    EXPECT_THROW(ctx.synchronize(), HazardError);
  } catch (...) {
    unsetenv("MS_ANALYZE");
    throw;
  }
  unsetenv("MS_ANALYZE");
}

TEST(ContextAnalyze, OffByDefault) {
  ms::rt::Context ctx(small_cfg());
  ctx.setup(2);
  EXPECT_FALSE(ctx.analyzing());
  const BufferId buf = ctx.create_virtual_buffer(4096);
  enqueue_racy(ctx, buf);
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(ContextAnalyze, CaptureCollectsInsteadOfThrowing) {
  Capture capture;
  {
    ms::rt::Context ctx(small_cfg());  // analyzing because a Capture is live
    EXPECT_TRUE(ctx.analyzing());
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    enqueue_racy(ctx, buf);
    EXPECT_NO_THROW(ctx.synchronize());
  }
  EXPECT_FALSE(capture.clean());
  EXPECT_EQ(capture.result().hazards[0].kind, HazardKind::RaceWAW);
  EXPECT_FALSE(capture.racy_record().empty());
}

TEST(ContextAnalyze, KernelAccessRangesDriveRaces) {
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(8192);
  const auto up = ctx.stream(0).enqueue_h2d(buf, 0, 8192);

  // Disjoint halves on two streams: clean.
  ms::rt::KernelLaunch lo{"lo", {}, {}, {}};
  lo.reads_writes(buf, 0, 4096);
  ms::rt::KernelLaunch hi{"hi", {}, {}, {}};
  hi.reads_writes(buf, 4096, 4096);
  ctx.stream(0).enqueue_kernel(std::move(lo), {up});
  ctx.stream(1).enqueue_kernel(std::move(hi), {up});
  EXPECT_NO_THROW(ctx.synchronize());

  // One byte of overlap: race.
  ms::rt::KernelLaunch lo2{"lo2", {}, {}, {}};
  lo2.reads_writes(buf, 0, 4097);
  ms::rt::KernelLaunch hi2{"hi2", {}, {}, {}};
  hi2.reads_writes(buf, 4096, 4096);
  ctx.stream(0).enqueue_kernel(std::move(lo2));
  ctx.stream(1).enqueue_kernel(std::move(hi2));
  EXPECT_THROW(ctx.synchronize(), HazardError);
}

TEST(ContextAnalyze, D2hOfUntouchedBufferIsUseBeforeWrite) {
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  const BufferId buf = ctx.create_virtual_buffer(1024);
  ctx.stream(0).enqueue_d2h(buf, 0, 1024);
  try {
    ctx.synchronize();
    FAIL() << "expected HazardError";
  } catch (const HazardError& e) {
    ASSERT_EQ(e.analysis().hazards.size(), 1u);
    EXPECT_EQ(e.analysis().hazards[0].kind, HazardKind::UseBeforeWrite);
  }
}

TEST(ContextAnalyze, AssumeDeviceResidentSuppressesIt) {
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  const BufferId buf = ctx.create_virtual_buffer(1024);
  ctx.assume_device_resident(buf);
  ctx.stream(0).enqueue_d2h(buf, 0, 1024);
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(ContextAnalyze, StreamSynchronizeIsAnOrderingEdge) {
  // Host blocks on stream 0, then enqueues the overlapping write on stream 1:
  // the host join orders them, so the analyzer must stay quiet.
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(2048);
  ctx.stream(0).enqueue_h2d(buf, 0, 2048);
  ctx.stream(0).synchronize();
  ctx.stream(1).enqueue_h2d(buf, 0, 2048);
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(ContextAnalyze, ContextWaitIsAnOrderingEdge) {
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(2048);
  const auto ev = ctx.stream(0).enqueue_h2d(buf, 0, 2048);
  ctx.wait(ev);
  ctx.stream(1).enqueue_h2d(buf, 0, 2048);
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(ContextAnalyze, SetupIsASegmentBoundary) {
  // Re-partitioning requires idle streams, so it is a global barrier: work
  // before and after needs no edges between them.
  ms::rt::Context ctx(small_cfg(), ContextConfig{.analyze = true});
  ctx.setup(2);
  const BufferId buf = ctx.create_virtual_buffer(2048);
  ctx.stream(0).enqueue_h2d(buf, 0, 2048);
  ctx.synchronize();
  ctx.setup(4);
  ctx.stream(3).enqueue_h2d(buf, 0, 2048);
  EXPECT_NO_THROW(ctx.synchronize());
}

TEST(TunerValidated, SkipsHazardousCandidates) {
  const auto cfg = small_cfg();
  // Candidate tiles==1 runs a racy pipeline, the rest a clean one. The racy
  // candidate must be excluded (and counted) even if it is fastest.
  std::vector<ms::rt::Tuner::Candidate> space{{1, 1}, {1, 2}, {1, 4}};
  const auto metric = [&](ms::rt::Tuner::Candidate c) {
    ms::rt::Context ctx(cfg);
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    if (c.tiles == 1) {
      enqueue_racy(ctx, buf);
    } else {
      const auto ev = ctx.stream(0).enqueue_h2d(buf, 0, 4096);
      ctx.stream(1).enqueue_h2d(buf, 0, 4096, {ev});
    }
    ctx.synchronize();
    return static_cast<double>(c.tiles);  // racy candidate would win on time
  };

  const auto serial = ms::rt::Tuner::search_validated(space, metric);
  EXPECT_EQ(serial.evaluated, 3u);
  EXPECT_EQ(serial.hazardous, 1u);
  EXPECT_EQ(serial.best.tiles, 2);

  const auto sweep = ms::rt::Tuner::search_validated(space, metric, ms::sim::SweepOptions{});
  EXPECT_EQ(sweep.hazardous, serial.hazardous);
  EXPECT_EQ(sweep.best.tiles, serial.best.tiles);
  EXPECT_EQ(sweep.best_metric, serial.best_metric);
}

TEST(TunerValidated, ThrowsWhenEveryCandidateIsHazardous) {
  const auto cfg = small_cfg();
  std::vector<ms::rt::Tuner::Candidate> space{{1, 1}, {1, 2}};
  const auto metric = [&](ms::rt::Tuner::Candidate) {
    ms::rt::Context ctx(cfg);
    ctx.setup(2);
    const BufferId buf = ctx.create_virtual_buffer(4096);
    enqueue_racy(ctx, buf);
    ctx.synchronize();
    return 1.0;
  };
  EXPECT_THROW((void)ms::rt::Tuner::search_validated(space, metric), ms::rt::Error);
}

}  // namespace
