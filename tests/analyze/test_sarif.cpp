// SARIF 2.1.0 round-trip: both analyses export through the shared emitter in
// analyze/report.cpp; these tests parse the emitted logs back with a minimal
// JSON reader and verify the schema shape, the rule tables, and that every
// hazard/finding survives the trip with its ruleId, level, and message.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/perf_lint.hpp"
#include "analyze/record.hpp"
#include "analyze/report.hpp"
#include "sim/sim_time.hpp"

namespace {

using ms::analyze::GraphRecord;
using ms::analyze::LintFinding;
using ms::analyze::LintReport;
namespace rule = ms::analyze::rule;

// --- minimal JSON reader (enough for SARIF round-trips) ----------------------

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    auto it = object.find(key);
    return it == object.end() ? missing : it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON document";
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::String;
      v.string = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      pos_ += 4;
      return JsonValue{};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Object;
    EXPECT_TRUE(consume('{'));
    if (consume('}')) return v;
    do {
      EXPECT_EQ(peek(), '"') << "object key must be a string";
      std::string key = string();
      EXPECT_TRUE(consume(':'));
      v.object.emplace(std::move(key), value());
    } while (consume(','));
    EXPECT_TRUE(consume('}')) << "unterminated object";
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Array;
    EXPECT_TRUE(consume('['));
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (consume(','));
    EXPECT_TRUE(consume(']')) << "unterminated array";
    return v;
  }

  std::string string() {
    std::string out;
    EXPECT_TRUE(consume('"'));
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // The emitter only escapes control bytes; decode as a raw char.
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: c = e; break;
        }
      }
      out.push_back(c);
    }
    EXPECT_TRUE(consume('"')) << "unterminated string";
    return out;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      pos_ += 5;
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Number;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue parse(const std::string& text) { return JsonParser(text).parse(); }

const JsonValue& driver_of(const JsonValue& doc) {
  return doc.at("runs").array.at(0).at("tool").at("driver");
}

// --- lint SARIF --------------------------------------------------------------

LintReport duplex_report() {
  GraphRecord g;
  g.stream_count = 2;
  constexpr ms::rt::BufferId kUp{1}, kDown{2};
  constexpr std::size_t kMiB = 1u << 20;
  g.declare_buffer(kUp, 8 * kMiB, "up");
  g.declare_buffer(kDown, 8 * kMiB, "down");
  g.assume_device_resident(kDown);
  for (std::size_t i = 0; i < 4; ++i) {
    g.add_h2d(0, 0, kUp, i * kMiB, kMiB);
    g.add_d2h(1, 0, kDown, i * kMiB, kMiB);
  }
  return ms::analyze::lint(g, ms::analyze::LintOptions{});
}

TEST(Sarif, LintLogShape) {
  const LintReport r = duplex_report();
  ASSERT_FALSE(r.clean());
  const JsonValue doc = parse(ms::analyze::sarif_report(r.findings));

  EXPECT_EQ(doc.at("version").string, "2.1.0");
  EXPECT_NE(doc.at("$schema").string.find("sarif-2.1.0"), std::string::npos);
  ASSERT_EQ(doc.at("runs").array.size(), 1u);

  const JsonValue& driver = driver_of(doc);
  EXPECT_EQ(driver.at("name").string, "mstream-lint");

  // The rule table always carries the full catalog, even for one finding.
  const auto& rules = driver.at("rules").array;
  ASSERT_EQ(rules.size(), ms::analyze::lint_rule_ids().size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const std::string& id = rules[i].at("id").string;
    EXPECT_EQ(id, ms::analyze::lint_rule_ids()[i]);
    EXPECT_EQ(rules[i].at("shortDescription").at("text").string,
              ms::analyze::lint_rule_description(id));
  }
}

TEST(Sarif, LintFindingsRoundTrip) {
  const LintReport r = duplex_report();
  ASSERT_EQ(r.findings.size(), 1u);
  const JsonValue doc = parse(ms::analyze::sarif_report(r.findings));
  const auto& results = doc.at("runs").array.at(0).at("results").array;
  ASSERT_EQ(results.size(), 1u);

  const LintFinding& f = r.findings[0];
  const JsonValue& res = results[0];
  EXPECT_EQ(res.at("ruleId").string, f.rule);
  EXPECT_EQ(res.at("level").string, "warning");
  EXPECT_EQ(res.at("message").at("text").string, f.message);
  const JsonValue& props = res.at("properties");
  EXPECT_EQ(props.at("device").number, static_cast<double>(f.device));
  EXPECT_EQ(props.at("fixit").string, f.fixit);
  EXPECT_EQ(props.at("actions").array.size(), f.actions.size());
}

TEST(Sarif, LintSeverityMapsToLevel) {
  LintFinding note;
  note.rule = std::string(rule::kRedundantH2D);
  note.severity = ms::analyze::LintSeverity::Note;
  note.message = "a note-level finding";
  LintFinding warn;
  warn.rule = std::string(rule::kDeadAction);
  warn.severity = ms::analyze::LintSeverity::Warning;
  warn.message = "a warning-level finding";

  const JsonValue doc = parse(ms::analyze::sarif_report({note, warn}));
  const auto& results = doc.at("runs").array.at(0).at("results").array;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].at("level").string, "note");
  EXPECT_EQ(results[1].at("level").string, "warning");
}

TEST(Sarif, CleanLintLogIsValidWithEmptyResults) {
  const JsonValue doc = parse(ms::analyze::sarif_report(std::vector<LintFinding>{}));
  EXPECT_EQ(doc.at("runs").array.at(0).at("results").array.size(), 0u);
  EXPECT_EQ(driver_of(doc).at("rules").array.size(), ms::analyze::lint_rule_ids().size());
}

TEST(Sarif, EscapesMessageContent) {
  LintFinding f;
  f.rule = std::string(rule::kDeadAction);
  f.message = "quote \" backslash \\ newline \n tab \t done";
  const JsonValue doc = parse(ms::analyze::sarif_report({f}));
  const auto& results = doc.at("runs").array.at(0).at("results").array;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("message").at("text").string, f.message);
}

// --- hazard SARIF ------------------------------------------------------------

TEST(Sarif, HazardLogRoundTrip) {
  // Two unordered overlapping writes from different streams: one RaceWAW.
  GraphRecord g;
  g.stream_count = 2;
  constexpr ms::rt::BufferId kBuf{1};
  g.declare_buffer(kBuf, 4096, "grid");
  g.add_kernel(0, 0, "w1", {{kBuf, ms::rt::AccessMode::Write, ms::rt::MemRange::flat(0, 4096)}});
  g.add_kernel(1, 0, "w2", {{kBuf, ms::rt::AccessMode::Write, ms::rt::MemRange::flat(0, 4096)}});
  const ms::analyze::Analysis a = ms::analyze::analyze(g);
  ASSERT_FALSE(a.clean());

  const JsonValue doc = parse(ms::analyze::sarif_report(a));
  EXPECT_EQ(doc.at("version").string, "2.1.0");
  const JsonValue& driver = driver_of(doc);
  EXPECT_EQ(driver.at("name").string, "mstream-analyze");
  EXPECT_FALSE(driver.at("rules").array.empty());

  const auto& results = doc.at("runs").array.at(0).at("results").array;
  ASSERT_EQ(results.size(), a.hazards.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].at("ruleId").string, ms::analyze::to_string(a.hazards[i].kind));
    EXPECT_EQ(results[i].at("level").string, "error");
    EXPECT_EQ(results[i].at("message").at("text").string, a.hazards[i].message);
  }
}

TEST(Sarif, RuleDescriptionsCoverCatalog) {
  for (const std::string_view id : ms::analyze::lint_rule_ids()) {
    EXPECT_FALSE(ms::analyze::lint_rule_description(id).empty()) << id;
  }
  EXPECT_TRUE(ms::analyze::lint_rule_description("no-such-rule").empty());
}

}  // namespace
