// Seeded-hazard fixtures: hand-built GraphRecords (same builder API the
// runtime recorder uses) with exactly one planted defect each, asserting the
// analyzer reports the exact hazard kind, the two actions involved, and the
// missing edge — plus matching clean-graph negatives.

#include <gtest/gtest.h>

#include <string>

#include "analyze/analyzer.hpp"
#include "analyze/record.hpp"
#include "analyze/report.hpp"

namespace {

using ms::analyze::analyze;
using ms::analyze::GraphRecord;
using ms::analyze::HazardKind;
using ms::analyze::NodeKind;
using ms::rt::AccessMode;
using ms::rt::BufferAccess;
using ms::rt::BufferId;
using ms::rt::MemRange;

constexpr BufferId kBuf{1};

TEST(Fixtures, MissingEventEdgeIsRaw) {
  GraphRecord g;
  g.declare_buffer(kBuf, 4096, "grid");
  // Stream 0 uploads; stream 1's kernel reads the uploaded device bytes
  // without the event edge that should order it after the upload.
  const auto up = g.add_h2d(0, 0, kBuf, 0, 4096);
  const auto k = g.add_kernel(1, 0, "stencil", {{kBuf, AccessMode::Read, MemRange::flat(0, 4096)}});

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  const auto& h = a.hazards[0];
  EXPECT_EQ(h.kind, HazardKind::RaceRAW);
  EXPECT_EQ(h.buffer, kBuf.value);
  EXPECT_EQ(h.buffer_name, "grid");
  EXPECT_EQ(h.space, 0);
  EXPECT_EQ(h.first.id, up);
  EXPECT_EQ(h.second.id, k);
  EXPECT_EQ(h.first.stream, 0);
  EXPECT_EQ(h.second.stream, 1);
  EXPECT_NE(h.message.find("missing edge"), std::string::npos);
  EXPECT_NE(h.message.find("stencil"), std::string::npos);
  EXPECT_NE(h.message.find("grid"), std::string::npos);
}

TEST(Fixtures, EventEdgeMakesItClean) {
  GraphRecord g;
  g.declare_buffer(kBuf, 4096);
  const auto up = g.add_h2d(0, 0, kBuf, 0, 4096);
  g.add_kernel(1, 0, "stencil", {{kBuf, AccessMode::Read, MemRange::flat(0, 4096)}}, {up});
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, WarOnOverlappingTileRanges) {
  // Row-major 8x8 plane of 8-byte elements. A kernel on stream 0 reads the
  // tile rows [0,4) x cols [0,5); an unordered kernel on stream 1 writes
  // rows [2,6) x cols [4,8) — the two tiles share column 4 of rows 2..3.
  GraphRecord g;
  g.declare_buffer(kBuf, 8 * 8 * 8, "plane");
  const auto rd =
      g.add_kernel(0, 0, "reader", {{kBuf, AccessMode::Read, MemRange::tile(0, 4, 0, 5, 8, 8)}});
  const auto wr =
      g.add_kernel(1, 0, "writer", {{kBuf, AccessMode::Write, MemRange::tile(2, 6, 4, 8, 8, 8)}});

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  EXPECT_EQ(a.hazards[0].kind, HazardKind::RaceWAR);
  EXPECT_EQ(a.hazards[0].first.id, rd);
  EXPECT_EQ(a.hazards[0].second.id, wr);
}

TEST(Fixtures, ColumnDisjointTilesAreClean) {
  // Same rows, disjoint column bands: the bounding byte intervals interleave
  // but no row run overlaps — the exact strided walk must say clean.
  GraphRecord g;
  g.declare_buffer(kBuf, 8 * 8 * 8);
  g.add_kernel(0, 0, "left", {{kBuf, AccessMode::Write, MemRange::tile(0, 8, 0, 4, 8, 8)}});
  g.add_kernel(1, 0, "right", {{kBuf, AccessMode::Write, MemRange::tile(0, 8, 4, 8, 8, 8)}});
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, D2hBeforeKernelWriteIsUseBeforeWrite) {
  GraphRecord g;
  g.declare_buffer(kBuf, 1024, "out");
  // The readback is enqueued (and FIFO-ordered) *before* the kernel that
  // produces the bytes — on one stream, so there is no race, just a read of
  // device bytes nothing has written yet.
  const auto down = g.add_d2h(0, 0, kBuf, 0, 1024);
  g.add_kernel(0, 0, "producer", {{kBuf, AccessMode::Write, MemRange::flat(0, 1024)}});

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  EXPECT_EQ(a.hazards[0].kind, HazardKind::UseBeforeWrite);
  EXPECT_EQ(a.hazards[0].second.id, down);
  EXPECT_NE(a.hazards[0].message.find("never written"), std::string::npos);
}

TEST(Fixtures, KernelThenD2hIsClean) {
  GraphRecord g;
  g.declare_buffer(kBuf, 1024);
  g.add_kernel(0, 0, "producer", {{kBuf, AccessMode::Write, MemRange::flat(0, 1024)}});
  g.add_d2h(0, 0, kBuf, 0, 1024);
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, AssumeResidentSuppressesUseBeforeWrite) {
  GraphRecord g;
  g.declare_buffer(kBuf, 1024);
  g.assume_device_resident(kBuf);
  g.add_d2h(0, 0, kBuf, 0, 1024);
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, DoubleFree) {
  GraphRecord g;
  g.declare_buffer(kBuf, 64, "victim");
  g.add_h2d(0, 0, kBuf, 0, 64);
  const auto f1 = g.add_free(kBuf);
  const auto f2 = g.add_free(kBuf);

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  EXPECT_EQ(a.hazards[0].kind, HazardKind::DoubleFree);
  EXPECT_EQ(a.hazards[0].first.id, f1);
  EXPECT_EQ(a.hazards[0].second.id, f2);
}

TEST(Fixtures, UseAfterFree) {
  GraphRecord g;
  g.declare_buffer(kBuf, 64, "victim");
  const auto f = g.add_free(kBuf);
  const auto use = g.add_h2d(0, 0, kBuf, 0, 64);

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  EXPECT_EQ(a.hazards[0].kind, HazardKind::UseAfterFree);
  EXPECT_EQ(a.hazards[0].first.id, f);
  EXPECT_EQ(a.hazards[0].second.id, use);
}

TEST(Fixtures, TwoStreamWaitCycleIsDeadlock) {
  // Dep ids resolve at analysis time, so a fixture can express the mutual
  // wait the runtime's enqueue-ordered events cannot: node 1 waits on node 2
  // and vice versa.
  GraphRecord g;
  g.declare_buffer(kBuf, 64);
  const auto a1 = g.add_kernel(0, 0, "left", {}, {2});
  const auto a2 = g.add_kernel(1, 0, "right", {}, {a1});

  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);
  const auto& h = a.hazards[0];
  EXPECT_EQ(h.kind, HazardKind::Deadlock);
  // Cycle printed as a stream/action chain with the first node repeated.
  ASSERT_GE(h.cycle.size(), 3u);
  EXPECT_EQ(h.cycle.front().id, h.cycle.back().id);
  bool saw1 = false;
  bool saw2 = false;
  for (const auto& n : h.cycle) {
    saw1 = saw1 || n.id == a1;
    saw2 = saw2 || n.id == a2;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
  EXPECT_NE(h.message.find("cycle"), std::string::npos);
}

TEST(Fixtures, FifoOrdersSameStream) {
  // Overlapping writes on one stream: FIFO is a real ordering edge.
  GraphRecord g;
  g.declare_buffer(kBuf, 256);
  g.add_h2d(0, 0, kBuf, 0, 256);
  g.add_h2d(0, 0, kBuf, 0, 256);
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, HostSyncJoinsEverythingBefore) {
  // Stream 0 uploads; the host blocks on that upload; stream 1's kernel is
  // enqueued after the join, so it needs no explicit event edge.
  GraphRecord g;
  g.declare_buffer(kBuf, 128);
  const auto up = g.add_h2d(0, 0, kBuf, 0, 128);
  g.add_host_sync({up});
  g.add_kernel(1, 0, "late", {{kBuf, AccessMode::Read, MemRange::flat(0, 128)}});
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, TransitiveOrderIsEnough) {
  // up -> k1 (event), k1 -> k2 (event); k2 vs up must be ordered through the
  // vector clocks even though there is no direct edge.
  GraphRecord g;
  g.declare_buffer(kBuf, 512);
  const auto up = g.add_h2d(0, 0, kBuf, 0, 512);
  const auto k1 =
      g.add_kernel(1, 0, "mid", {{kBuf, AccessMode::ReadWrite, MemRange::flat(0, 512)}}, {up});
  g.add_kernel(2, 0, "last", {{kBuf, AccessMode::ReadWrite, MemRange::flat(0, 512)}}, {k1});
  EXPECT_TRUE(analyze(g).clean());
}

TEST(Fixtures, WawClassifiedWhenBothWrite) {
  GraphRecord g;
  g.declare_buffer(kBuf, 64);
  g.add_h2d(0, 0, kBuf, 0, 64);
  g.add_h2d(1, 0, kBuf, 0, 64);
  const auto a = analyze(g);
  // Device-space WAW between the two uploads, host-space is read/read.
  ASSERT_EQ(a.hazards.size(), 1u);
  EXPECT_EQ(a.hazards[0].kind, HazardKind::RaceWAW);
}

TEST(Fixtures, SegmentResetDropsOldNodesButKeepsCoverage) {
  GraphRecord g;
  g.declare_buffer(kBuf, 256);
  g.add_h2d(0, 0, kBuf, 0, 256);
  ms::analyze::Coverage cover;
  EXPECT_TRUE(analyze(g, &cover).clean());
  g.reset_segment();
  // Next segment reads the bytes the previous segment wrote: the carried
  // coverage must keep use-before-write quiet.
  g.add_d2h(1, 0, kBuf, 0, 256);
  EXPECT_TRUE(analyze(g, &cover).clean());
  // Without the carry, the same segment is a use-before-write.
  EXPECT_EQ(analyze(g).hazards.size(), 1u);
}

TEST(Reports, JsonShapeAndDotSubgraph) {
  GraphRecord g;
  g.declare_buffer(kBuf, 4096, "grid");
  g.add_h2d(0, 0, kBuf, 0, 4096);
  g.add_kernel(1, 0, "stencil", {{kBuf, AccessMode::Read, MemRange::flat(0, 4096)}});
  const auto a = analyze(g);
  ASSERT_EQ(a.hazards.size(), 1u);

  const std::string json = ms::analyze::json_report(a);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"race-raw\""), std::string::npos);
  EXPECT_NE(json.find("\"grid\""), std::string::npos);

  const std::string dot = ms::analyze::dot_racy_subgraph(a, g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("stencil"), std::string::npos);
  EXPECT_NE(dot.find("race-raw"), std::string::npos);  // the dashed missing-edge label

  const std::string text = ms::analyze::text_report(a);
  EXPECT_NE(text.find("1 hazard"), std::string::npos);
}

TEST(Reports, CleanText) {
  GraphRecord g;
  g.declare_buffer(kBuf, 64);
  g.add_h2d(0, 0, kBuf, 0, 64);
  const auto a = analyze(g);
  EXPECT_NE(ms::analyze::text_report(a).find("clean"), std::string::npos);
  EXPECT_NE(ms::analyze::json_report(a).find("\"clean\": true"), std::string::npos);
}

}  // namespace
