// Clean-graph negatives: the ported applications, run under an
// analyze::Capture at small sizes, must produce zero hazards — and enabling
// the analyzer must not perturb virtual times or functional checksums.

#include <gtest/gtest.h>

#include "analyze/capture.hpp"
#include "analyze/report.hpp"
#include "apps/cf_app.hpp"
#include "apps/hbench.hpp"
#include "apps/hotspot_app.hpp"
#include "apps/kmeans_app.hpp"
#include "apps/kmeans_async_app.hpp"
#include "apps/lu_app.hpp"
#include "apps/mm_app.hpp"
#include "apps/nn_app.hpp"
#include "apps/srad_app.hpp"
#include "sim/sim_config.hpp"

namespace {

using ms::analyze::Capture;

ms::sim::SimConfig cfg() { return ms::sim::SimConfig::phi_31sp(); }

template <typename Fn>
ms::apps::AppResult expect_clean(Fn&& run) {
  Capture capture;
  ms::apps::AppResult r = run();
  EXPECT_TRUE(capture.clean()) << ms::analyze::text_report(capture.result());
  return r;
}

TEST(AppsClean, Mm) {
  ms::apps::MmConfig mc;
  mc.dim = 128;
  mc.tile_grid = 2;
  expect_clean([&] { return ms::apps::MmApp::run(cfg(), mc); });
}

TEST(AppsClean, Nn) {
  ms::apps::NnConfig nc;
  nc.records = 1u << 12;
  nc.tiles = 4;
  expect_clean([&] { return ms::apps::NnApp::run(cfg(), nc); });
}

TEST(AppsClean, Kmeans) {
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 3;
  kc.tiles = 4;
  expect_clean([&] { return ms::apps::KmeansApp::run(cfg(), kc); });
}

TEST(AppsClean, KmeansGraphReplay) {
  ms::apps::KmeansConfig kc;
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 3;
  kc.tiles = 4;
  kc.common.graph = ms::apps::GraphMode::Interpreted;
  expect_clean([&] { return ms::apps::KmeansApp::run(cfg(), kc); });
}

TEST(AppsClean, KmeansAsync) {
  ms::apps::KmeansConfig kc;  // the async port shares the k-means knobs
  kc.points = 2048;
  kc.dims = 4;
  kc.iterations = 4;
  kc.tiles = 4;
  expect_clean([&] { return ms::apps::KmeansAsyncApp::run(cfg(), kc); });
}

TEST(AppsClean, Hotspot) {
  ms::apps::HotspotConfig hc;
  hc.rows = hc.cols = 64;
  hc.tile_rows = hc.tile_cols = 32;
  hc.steps = 3;
  expect_clean([&] { return ms::apps::HotspotApp::run(cfg(), hc); });
}

TEST(AppsClean, Srad) {
  ms::apps::SradConfig sc;
  sc.rows = sc.cols = 64;
  sc.tile_rows = sc.tile_cols = 32;
  sc.iterations = 3;
  expect_clean([&] { return ms::apps::SradApp::run(cfg(), sc); });
}

TEST(AppsClean, Cf) {
  ms::apps::CfConfig cc;
  cc.dim = 128;
  cc.tile = 64;
  expect_clean([&] { return ms::apps::CfApp::run(cfg(), cc); });
}

TEST(AppsClean, Lu) {
  ms::apps::LuConfig lc;
  lc.dim = 128;
  lc.tile = 64;
  expect_clean([&] { return ms::apps::LuApp::run(cfg(), lc); });
}

TEST(AppsClean, CfMultiDevice) {
  // Cross-device tile replication goes through host staging; the coherence
  // layer must order those host-range writes too.
  ms::apps::CfConfig cc;
  cc.dim = 128;
  cc.tile = 32;
  expect_clean([&] { return ms::apps::CfApp::run(ms::sim::SimConfig::phi_31sp_x2(), cc); });
}

TEST(AppsClean, LuMultiDevice) {
  ms::apps::LuConfig lc;
  lc.dim = 128;
  lc.tile = 32;
  expect_clean([&] { return ms::apps::LuApp::run(ms::sim::SimConfig::phi_31sp_x2(), lc); });
}

TEST(AppsClean, HbenchFigures) {
  Capture capture;
  (void)ms::apps::HBench::transfer_pattern(cfg(), 4, 4, 1u << 16);
  (void)ms::apps::HBench::overlap(cfg(), 1u << 14, 4, 2, 4);
  (void)ms::apps::HBench::spatial(cfg(), 2, 4, 4, 1u << 14);
  (void)ms::apps::HBench::spatial_ref(cfg(), 4, 1u << 14);
  EXPECT_TRUE(capture.clean()) << ms::analyze::text_report(capture.result());
}

TEST(AppsClean, AnalyzerDoesNotPerturbResults) {
  // Virtual times and functional checksums must be bit-identical with the
  // analyzer on (Capture installed) and off.
  ms::apps::HotspotConfig hc;
  hc.rows = hc.cols = 64;
  hc.tile_rows = hc.tile_cols = 32;
  hc.steps = 3;
  ms::apps::SradConfig sc;
  sc.rows = sc.cols = 64;
  sc.tile_rows = sc.tile_cols = 32;
  sc.iterations = 3;

  const auto hot_off = ms::apps::HotspotApp::run(cfg(), hc);
  const auto srad_off = ms::apps::SradApp::run(cfg(), sc);
  const auto hot_on = expect_clean([&] { return ms::apps::HotspotApp::run(cfg(), hc); });
  const auto srad_on = expect_clean([&] { return ms::apps::SradApp::run(cfg(), sc); });

  EXPECT_EQ(hot_on.ms, hot_off.ms);
  EXPECT_EQ(hot_on.checksum, hot_off.checksum);
  EXPECT_EQ(srad_on.ms, srad_off.ms);
  EXPECT_EQ(srad_on.checksum, srad_off.checksum);
}

}  // namespace
