// Seeded anti-pattern fixtures for the performance linter: hand-built
// GraphRecords (same builder API the runtime recorder uses), one per rule id,
// asserting the exact rule, offending actions, and fix-it — plus negatives
// showing each rule's gate, and hand-computed critical-path bound checks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/perf_lint.hpp"
#include "analyze/record.hpp"
#include "sim/pcie_link.hpp"
#include "sim/sim_config.hpp"

namespace {

using ms::analyze::GraphRecord;
using ms::analyze::lint;
using ms::analyze::LintCarry;
using ms::analyze::LintFinding;
using ms::analyze::LintOptions;
using ms::analyze::LintReport;
using ms::analyze::LintSeverity;
using ms::rt::AccessMode;
using ms::rt::BufferId;
using ms::rt::MemRange;
using ms::sim::SimTime;
namespace rule = ms::analyze::rule;

constexpr BufferId kA{1};
constexpr BufferId kB{2};
constexpr std::size_t kMiB = 1u << 20;

LintOptions opts() { return LintOptions{}; }

std::vector<std::string> rules_of(const LintReport& r) {
  std::vector<std::string> out;
  out.reserve(r.findings.size());
  for (const LintFinding& f : r.findings) out.push_back(f.rule);
  return out;
}

// --- critical-path / link bound ---------------------------------------------

TEST(LintBound, HandComputedChain) {
  // One stream: 1 MiB up -> 500 us kernel -> 1 MiB down. The FIFO chain is
  // the critical path; the serialized link only holds the two transfers.
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "payload");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "work", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(500));
  g.add_d2h(0, 0, kA, 0, kMiB);

  const LintOptions opt = opts();
  const SimTime floor = ms::sim::transfer_floor(opt.config.link, kMiB);
  const LintReport r = lint(g, opt);
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].device, 0);
  EXPECT_EQ(r.devices[0].h2d, floor);
  EXPECT_EQ(r.devices[0].d2h, floor);
  EXPECT_EQ(r.devices[0].link, floor + floor);  // half-duplex: sum
  EXPECT_EQ(r.devices[0].path, floor + SimTime::micros(500) + floor);
  EXPECT_EQ(r.bound, r.devices[0].path);  // path dominates the link here
}

TEST(LintBound, SerializedLinkDominatesParallelStreams) {
  // Two streams move 1 MiB each way with no ordering: the DAG paths are one
  // transfer long, but the half-duplex engine must still run all four
  // transfers back to back (paper Fig. 5).
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, 4 * kMiB, "a");
  g.declare_buffer(kB, 4 * kMiB, "b");
  g.assume_device_resident(kB);
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_h2d(0, 0, kA, kMiB, kMiB);
  g.add_d2h(1, 0, kB, 0, kMiB);
  g.add_d2h(1, 0, kB, kMiB, kMiB);

  const LintOptions opt = opts();
  const SimTime floor = ms::sim::transfer_floor(opt.config.link, kMiB);
  const LintReport r = lint(g, opt);
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].path, floor + floor);  // two-deep FIFO chains
  EXPECT_EQ(r.devices[0].link, 4.0 * floor);
  EXPECT_EQ(r.bound, 4.0 * floor);  // link occupancy is the binding floor
}

TEST(LintBound, DuplexLinkTakesMaxOfDirections) {
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, 4 * kMiB, "a");
  g.assume_device_resident(kA);
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_d2h(1, 0, kA, kMiB, 2 * kMiB);

  LintOptions opt = opts();
  opt.config.link.full_duplex = true;
  const LintReport r = lint(g, opt);
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].link, r.devices[0].d2h);  // max(h2d, d2h)
  EXPECT_TRUE(r.clean()) << r.findings.front().message;
}

// --- duplex-serialization ----------------------------------------------------

GraphRecord duplex_record(int per_direction) {
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, 8 * kMiB, "up");
  g.declare_buffer(kB, 8 * kMiB, "down");
  g.assume_device_resident(kB);
  for (int i = 0; i < per_direction; ++i) {
    g.add_h2d(0, 0, kA, static_cast<std::size_t>(i) * kMiB, kMiB);
    g.add_d2h(1, 0, kB, static_cast<std::size_t>(i) * kMiB, kMiB);
  }
  return g;
}

TEST(LintRules, DuplexSerialization) {
  const GraphRecord g = duplex_record(4);
  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kDuplexSerialization)});
  const LintFinding& f = r.findings[0];
  EXPECT_EQ(f.severity, LintSeverity::Warning);
  EXPECT_EQ(f.device, 0);
  ASSERT_EQ(f.actions.size(), 2u);
  EXPECT_EQ(f.actions[0].kind, ms::analyze::NodeKind::H2D);
  EXPECT_EQ(f.actions[1].kind, ms::analyze::NodeKind::D2H);
  EXPECT_NE(f.message.find("Fig. 5"), std::string::npos);
  EXPECT_NE(f.fixit.find("max(h2d, d2h)"), std::string::npos);
}

TEST(LintRules, DuplexNeedsUnorderedPair) {
  // Same volumes, but every D2H is ordered after every H2D via one event
  // edge: the directions never contend, so the rule stays quiet.
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, 8 * kMiB, "up");
  g.declare_buffer(kB, 8 * kMiB, "down");
  g.assume_device_resident(kB);
  std::uint64_t last = 0;
  for (int i = 0; i < 4; ++i) {
    last = g.add_h2d(0, 0, kA, static_cast<std::size_t>(i) * kMiB, kMiB);
  }
  for (int i = 0; i < 4; ++i) {
    g.add_d2h(1, 0, kB, static_cast<std::size_t>(i) * kMiB, kMiB, {last});
  }
  // The serializing edge is deliberate here; silence the (correct)
  // false-dependency verdict on it to isolate the duplex gate.
  LintOptions opt = opts();
  opt.disabled_rules.emplace_back(rule::kFalseDependency);
  EXPECT_TRUE(lint(g, opt).clean());
}

TEST(LintRules, DuplexNeedsLinkBoundSegment) {
  // One tiny transfer each way: unordered duplex exists, but the segment is
  // micro-scale (link << duplex_min_link) — launch-overhead noise, not a
  // restructuring target.
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, kMiB, "up");
  g.declare_buffer(kB, kMiB, "down");
  g.assume_device_resident(kB);
  g.add_h2d(0, 0, kA, 0, 4096);
  g.add_d2h(1, 0, kB, 0, 4096);
  EXPECT_TRUE(lint(g, opts()).clean());
}

TEST(LintRules, DuplexDisabledOnFullDuplexLink) {
  GraphRecord g = duplex_record(4);
  LintOptions opt = opts();
  opt.config.link.full_duplex = true;
  EXPECT_TRUE(lint(g, opt).clean());
}

// --- false-dependency --------------------------------------------------------

TEST(LintRules, FalseDependency) {
  // Stream 1's upload waits on stream 0's upload although they touch
  // different buffers; nothing else orders them, so the edge only blocks
  // overlap.
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, kMiB, "a");
  g.declare_buffer(kB, kMiB, "b");
  const auto first = g.add_h2d(0, 0, kA, 0, kMiB);
  const auto second = g.add_h2d(1, 0, kB, 0, kMiB, {first});

  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kFalseDependency)});
  const LintFinding& f = r.findings[0];
  EXPECT_EQ(f.severity, LintSeverity::Warning);
  ASSERT_EQ(f.actions.size(), 2u);
  EXPECT_EQ(f.actions[0].id, first);
  EXPECT_EQ(f.actions[1].id, second);
  EXPECT_NE(f.fixit.find("drop"), std::string::npos);
}

TEST(LintRules, TransitiveCarrierEdgeIsNotFalse) {
  // The kA-disjoint edge onto stream 1 carries ordering for the *later*
  // stream-1 reader of kA (FIFO): removing it would race, so it stays.
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, kMiB, "a");
  g.declare_buffer(kB, kMiB, "b");
  const auto w = g.add_kernel(0, 0, "producer",
                              {{kA, AccessMode::Write, MemRange::flat(0, kMiB)}});
  g.add_kernel(1, 0, "middle", {{kB, AccessMode::Read, MemRange::flat(0, kMiB)}}, {w});
  g.add_kernel(1, 0, "consumer", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}});
  g.assume_device_resident(kB);
  EXPECT_TRUE(lint(g, opts()).clean());
}

TEST(LintRules, CoveredEdgeIsNotReported) {
  // The host already waited on the producer, so the explicit belt-and-braces
  // event edge constrains nothing: not an overlap blocker.
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, kMiB, "a");
  g.declare_buffer(kB, kMiB, "b");
  const auto first = g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_host_sync({first});
  g.add_h2d(1, 0, kB, 0, kMiB, {first});
  EXPECT_TRUE(lint(g, opts()).clean());
}

TEST(LintRules, FalseDependencySkippedOnRacySegments) {
  GraphRecord g;
  g.stream_count = 3;
  g.declare_buffer(kA, kMiB, "a");
  g.declare_buffer(kB, kMiB, "b");
  const auto first = g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_h2d(1, 0, kB, 0, kMiB, {first});
  // An unrelated race elsewhere in the segment: "provably unordered" means
  // nothing, so the rule must not fire.
  g.add_kernel(1, 0, "w1", {{kB, AccessMode::Write, MemRange::flat(0, 64)}});
  g.add_kernel(2, 0, "w2", {{kB, AccessMode::Write, MemRange::flat(0, 64)}});
  EXPECT_TRUE(lint(g, opts(), nullptr, /*hazard_count=*/1).clean());
}

// --- single-stream-pipeline --------------------------------------------------

TEST(LintRules, SingleStreamPipeline) {
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "a");
  for (int round = 0; round < 3; ++round) {
    g.add_h2d(0, 0, kA, 0, kMiB);
    g.add_kernel(0, 0, "exe", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
                 SimTime::micros(100));
    g.add_d2h(0, 0, kA, 0, kMiB);
  }
  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kSingleStreamPipeline)});
  EXPECT_EQ(r.findings[0].device, 0);
  EXPECT_NE(r.findings[0].fixit.find("setup(P >= 2)"), std::string::npos);
}

TEST(LintRules, PipelineRoundsAccumulateAcrossSegments) {
  // The baseline apps synchronize once per iteration, so each segment holds
  // exactly one round; only the carry shows the repetition.
  LintCarry carry;
  const LintOptions opt = opts();
  std::vector<LintFinding> all;
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "a");
  for (int seg = 0; seg < 3; ++seg) {
    g.add_h2d(0, 0, kA, 0, kMiB);
    g.add_kernel(0, 0, "exe", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
                 SimTime::micros(100));
    g.add_d2h(0, 0, kA, 0, kMiB);
    const LintReport r = lint(g, opt, &carry);
    for (const LintFinding& f : r.findings) all.push_back(f);
    g.reset_segment();
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].rule, rule::kSingleStreamPipeline);
}

TEST(LintRules, TwoStreamPipelineIsClean) {
  // Compute-bound two-stream pipeline (500 us kernels keep the per-stream
  // path above the link occupancy, so duplex-serialization stays out too).
  GraphRecord g;
  g.stream_count = 2;
  g.declare_buffer(kA, 2 * kMiB, "a");
  for (int round = 0; round < 3; ++round) {
    for (int s = 0; s < 2; ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * kMiB;
      g.add_h2d(s, 0, kA, off, kMiB);
      g.add_kernel(s, 0, "exe", {{kA, AccessMode::ReadWrite, MemRange::flat(off, kMiB)}}, {},
                   SimTime::micros(500));
      g.add_d2h(s, 0, kA, off, kMiB);
    }
  }
  EXPECT_TRUE(lint(g, opts()).clean());
}

// --- split-core-partition ----------------------------------------------------

TEST(LintRules, SplitCorePartition) {
  GraphRecord g;
  g.partitions = 3;  // 56 usable cores: 3 does not divide them
  g.declare_buffer(kA, kMiB, "a");
  g.assume_device_resident(kA);
  g.add_kernel(0, 0, "exe", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kSplitCorePartition)});
  EXPECT_NE(r.findings[0].message.find("3 partitions"), std::string::npos);
  // Nearest aligned neighbours of 3 in {2,4,7,8,14,28,56}.
  EXPECT_NE(r.findings[0].fixit.find("2 or 4"), std::string::npos);
}

TEST(LintRules, AlignedPartitionsAreClean) {
  for (const int p : {1, 2, 4, 7, 8, 14, 28, 56}) {
    GraphRecord g;
    g.partitions = p;
    g.declare_buffer(kA, kMiB, "a");
    g.assume_device_resident(kA);
    g.add_kernel(0, 0, "exe", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}}, {},
                 SimTime::micros(100));
    EXPECT_TRUE(lint(g, opts()).clean()) << "P=" << p;
  }
}

TEST(LintRules, CheckPartitionShapeMatchesRule) {
  const ms::sim::CoprocessorSpec spec = ms::sim::SimConfig::phi_31sp().device;
  EXPECT_TRUE(ms::analyze::check_partition_shape(spec, 28).empty());
  const auto bad = ms::analyze::check_partition_shape(spec, 5);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, rule::kSplitCorePartition);
  // Out-of-range shapes are the PartitionTable ctor's domain, not a finding.
  EXPECT_TRUE(ms::analyze::check_partition_shape(spec, 0).empty());
  EXPECT_TRUE(ms::analyze::check_partition_shape(spec, 100000).empty());
}

// --- sub-knee-transfer -------------------------------------------------------

TEST(LintRules, SubKneeTransfer) {
  // Eight distinct 32 KiB chunks: each sits below half the ~82.5 KiB knee of
  // the 31SP link, and together they move enough bytes to matter.
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "tiles");
  const std::size_t chunk = 32u << 10;
  for (std::size_t i = 0; i < 8; ++i) g.add_h2d(0, 0, kA, i * chunk, chunk);
  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kSubKneeTransfer)});
  const LintFinding& f = r.findings[0];
  EXPECT_EQ(f.severity, LintSeverity::Note);
  EXPECT_EQ(f.buffer_name, "tiles");
  EXPECT_NE(f.message.find("8 distinct H2D chunks"), std::string::npos);
  EXPECT_NE(f.fixit.find("coalesce"), std::string::npos);
}

TEST(LintRules, RepeatedControlBlockIsNotSubKnee) {
  // The same tiny range re-uploaded many times is one distinct shape, not
  // death-by-a-thousand-tiles. (Disable redundant-h2d: that rule *does*
  // legitimately fire here.)
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "ctl");
  LintOptions opt = opts();
  opt.disabled_rules.emplace_back(rule::kRedundantH2D);
  LintCarry carry;
  for (int i = 0; i < 16; ++i) g.add_h2d(0, 0, kA, 0, 4096);
  EXPECT_TRUE(lint(g, opt, &carry).clean());
}

TEST(LintRules, AboveKneeChunksAreClean) {
  GraphRecord g;
  g.declare_buffer(kA, 8 * kMiB, "tiles");
  const std::size_t chunk = 256u << 10;  // well above the knee
  for (std::size_t i = 0; i < 8; ++i) g.add_h2d(0, 0, kA, i * chunk, chunk);
  EXPECT_TRUE(lint(g, opts()).clean());
}

// --- redundant-h2d -----------------------------------------------------------

TEST(LintRules, RedundantH2D) {
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "weights");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "consume", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  const auto second = g.add_h2d(0, 0, kA, 0, kMiB);  // nothing changed in between

  const LintReport r = lint(g, opts());
  ASSERT_EQ(rules_of(r), std::vector<std::string>{std::string(rule::kRedundantH2D)});
  const LintFinding& f = r.findings[0];
  EXPECT_EQ(f.severity, LintSeverity::Note);
  EXPECT_EQ(f.buffer, kA.value);
  EXPECT_EQ(f.buffer_name, "weights");
  ASSERT_EQ(f.actions.size(), 1u);
  EXPECT_EQ(f.actions[0].id, second);
  EXPECT_NE(f.fixit.find("host_write"), std::string::npos);
}

TEST(LintRules, HostWriteMakesReuploadMeaningful) {
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "weights");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "consume", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  g.add_host_write(kA, 0, kMiB);  // host mutated the bytes
  g.add_h2d(0, 0, kA, 0, kMiB);
  EXPECT_TRUE(lint(g, opts()).clean());
}

TEST(LintRules, KernelWriteMakesReuploadMeaningful) {
  // The device copy diverged; re-uploading restores host values.
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "state");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "mutate", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  g.add_h2d(0, 0, kA, 0, kMiB);
  LintOptions opt = opts();
  opt.disabled_rules.emplace_back(rule::kDeadAction);
  EXPECT_TRUE(lint(g, opt).clean());
}

TEST(LintRules, RedundancyTracksAcrossSegments) {
  // The iteration-loop shape: upload in segment 1, re-upload in segment 2.
  LintCarry carry;
  const LintOptions opt = opts();
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "weights");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "consume", {{kA, AccessMode::Read, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  EXPECT_TRUE(lint(g, opt, &carry).clean());

  g.reset_segment();
  g.add_h2d(0, 0, kA, 0, kMiB);
  const LintReport r2 = lint(g, opt, &carry);
  ASSERT_EQ(rules_of(r2), std::vector<std::string>{std::string(rule::kRedundantH2D)});
}

// --- dead-action -------------------------------------------------------------

TEST(LintRules, DeadAction) {
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "in");
  g.declare_buffer(kB, kMiB, "out");
  g.add_h2d(0, 0, kA, 0, kMiB);
  const auto k = g.add_kernel(0, 0, "produce",
                              {{kA, AccessMode::Read, MemRange::flat(0, kMiB)},
                               {kB, AccessMode::Write, MemRange::flat(0, kMiB)}},
                              {}, SimTime::micros(100));
  // No readback of kB: the kernel's output dies on the device.
  LintCarry carry;
  const LintOptions opt = opts();
  EXPECT_TRUE(lint(g, opt, &carry).clean());  // verdict only final at the end
  const std::vector<LintFinding> fin = ms::analyze::finalize_lint(carry, opt);
  ASSERT_EQ(fin.size(), 1u);
  EXPECT_EQ(fin[0].rule, rule::kDeadAction);
  EXPECT_EQ(fin[0].severity, LintSeverity::Warning);
  EXPECT_EQ(fin[0].buffer_name, "out");
  ASSERT_EQ(fin[0].actions.size(), 1u);
  EXPECT_EQ(fin[0].actions[0].id, k);
}

TEST(LintRules, ReadbackConsumesTheWrite) {
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "in");
  g.declare_buffer(kB, kMiB, "out");
  g.add_h2d(0, 0, kA, 0, kMiB);
  g.add_kernel(0, 0, "produce",
               {{kA, AccessMode::Read, MemRange::flat(0, kMiB)},
                {kB, AccessMode::Write, MemRange::flat(0, kMiB)}},
               {}, SimTime::micros(100));
  g.add_d2h(0, 0, kB, 0, kMiB);
  LintCarry carry;
  const LintOptions opt = opts();
  EXPECT_TRUE(lint(g, opt, &carry).clean());
  EXPECT_TRUE(ms::analyze::finalize_lint(carry, opt).empty());
}

TEST(LintRules, OverwriteConsumesTheWrite) {
  // Iterative ping-pong: a later overwrite of the same range counts as
  // consumption, keeping stencil-style state out of the report.
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "state");
  g.add_kernel(0, 0, "step1", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  g.add_kernel(0, 0, "step2", {{kA, AccessMode::ReadWrite, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  g.add_d2h(0, 0, kA, 0, kMiB);
  LintCarry carry;
  const LintOptions opt = opts();
  EXPECT_TRUE(lint(g, opt, &carry).clean());
  EXPECT_TRUE(ms::analyze::finalize_lint(carry, opt).empty());
}

TEST(LintRules, ConsumptionCrossesSegments) {
  // One record across two segments — the recorder idiom. reset_segment keeps
  // the id sequence monotone, so the later readback is a distinct node (a
  // fresh record would reuse id 1 and look like the write's own node).
  LintCarry carry;
  const LintOptions opt = opts();
  GraphRecord g;
  g.declare_buffer(kA, kMiB, "state");
  g.add_kernel(0, 0, "produce", {{kA, AccessMode::Write, MemRange::flat(0, kMiB)}}, {},
               SimTime::micros(100));
  EXPECT_TRUE(lint(g, opt, &carry).clean());
  g.reset_segment();
  g.add_d2h(0, 0, kA, 0, kMiB);
  EXPECT_TRUE(lint(g, opt, &carry).clean());
  EXPECT_TRUE(ms::analyze::finalize_lint(carry, opt).empty());
}

// --- option plumbing ---------------------------------------------------------

TEST(LintOptionsTest, DisabledRulesAreSkipped) {
  GraphRecord g = duplex_record(4);
  LintOptions opt = opts();
  opt.disabled_rules.emplace_back(rule::kDuplexSerialization);
  EXPECT_TRUE(lint(g, opt).clean());
}

TEST(LintOptionsTest, RuleCatalogIsStable) {
  const auto& ids = ms::analyze::lint_rule_ids();
  ASSERT_EQ(ids.size(), 7u);
  EXPECT_EQ(ids[0], rule::kDuplexSerialization);
  EXPECT_EQ(ids[6], rule::kDeadAction);
}

}  // namespace
