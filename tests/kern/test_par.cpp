#include "kern/par.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ms::kern::par {
namespace {

TEST(Par, BlockCount) {
  EXPECT_EQ(block_count(0, 4), 0u);
  EXPECT_EQ(block_count(1, 4), 1u);
  EXPECT_EQ(block_count(4, 4), 1u);
  EXPECT_EQ(block_count(5, 4), 2u);
  EXPECT_EQ(block_count(8, 4), 2u);
  EXPECT_EQ(block_count(9, 4), 3u);
  EXPECT_EQ(block_count(9, 0), 0u);  // degenerate grain
}

TEST(Par, ThreadScopeRestores) {
  set_threads(0);
  {
    ThreadScope scope(3);
    EXPECT_EQ(threads(), 3);
    {
      ThreadScope inner(1);
      EXPECT_EQ(threads(), 1);
    }
    EXPECT_EQ(threads(), 3);
  }
  EXPECT_EQ(threads(), 0);
}

std::vector<std::pair<std::size_t, std::size_t>> observed_blocks(std::size_t begin,
                                                                 std::size_t end,
                                                                 std::size_t grain) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for_blocked(begin, end, grain, [&](std::size_t b0, std::size_t b1) {
    std::lock_guard<std::mutex> lock(mu);
    blocks.emplace_back(b0, b1);
  });
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

TEST(Par, ForBlockedCoversRangeExactlyOnce) {
  const auto blocks = observed_blocks(3, 25, 7);
  // Fixed decomposition of [3, 25) at grain 7: block b = [3+7b, min(3+7(b+1), 25)).
  const std::vector<std::pair<std::size_t, std::size_t>> want{
      {3, 10}, {10, 17}, {17, 24}, {24, 25}};
  EXPECT_EQ(blocks, want);
}

TEST(Par, DecompositionIndependentOfThreadCount) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const auto serial = [&] {
    ThreadScope scope(1);
    return observed_blocks(0, 1000, 64);
  }();
  for (const int t : {2, hw > 1 ? hw : 4}) {
    ThreadScope scope(t);
    EXPECT_EQ(observed_blocks(0, 1000, 64), serial) << "threads=" << t;
  }
}

TEST(Par, ForBlockedEmptyRangeAndZeroGrain) {
  for_blocked(5, 5, 4, [](std::size_t, std::size_t) { FAIL() << "empty range ran a block"; });
  // Zero grain degrades to one whole-range block instead of dividing by zero.
  const auto blocks = observed_blocks(2, 9, 0);
  const std::vector<std::pair<std::size_t, std::size_t>> want{{2, 9}};
  EXPECT_EQ(blocks, want);
}

TEST(Par, TreeMergeShapeIsFixed) {
  // A non-commutative, non-associative combine exposes the merge order:
  // the fixed pairwise tree over 5 leaves must produce ((01)(23))4.
  std::vector<std::string> leaves{"0", "1", "2", "3", "4"};
  detail::tree_merge(leaves, [](const std::string& a, const std::string& b) {
    return "(" + a + b + ")";
  });
  EXPECT_EQ(leaves[0], "(((01)(23))4)");
}

TEST(Par, BlockedReduceSumsEveryBlock) {
  // 1000 items at grain 64 -> 16 blocks; sum of i over [0, 1000).
  const long total = blocked_reduce(
      0, 1000, 64, 0L,
      [](std::size_t b0, std::size_t b1) {
        long s = 0;
        for (std::size_t i = b0; i < b1; ++i) s += static_cast<long>(i);
        return s;
      },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, 999L * 1000L / 2L);
}

TEST(Par, BlockedReduceBitIdenticalAcrossThreadCounts) {
  // Doubles chosen so the sum rounds differently under other groupings; the
  // fixed decomposition + fixed tree must give the same bits every time.
  std::vector<double> xs(10000);
  double seed = 0.5;
  for (double& x : xs) {
    seed = seed * 1103515245.0 + 12345.0;
    seed = seed - 4294967296.0 * static_cast<double>(static_cast<long long>(seed / 4294967296.0));
    x = seed / 4294967296.0 + 1e-12;
  }
  auto reduce = [&] {
    return blocked_reduce(
        0, xs.size(), 128, 0.0,
        [&](std::size_t b0, std::size_t b1) {
          double s = 0.0;
          for (std::size_t i = b0; i < b1; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = [&] {
    ThreadScope scope(1);
    return reduce();
  }();
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int t : {0, 2, hw > 1 ? hw : 4}) {
    ThreadScope scope(t);
    EXPECT_EQ(serial, reduce()) << "threads=" << t;
  }
}

TEST(Par, EmptyReduceReturnsIdentity) {
  const int r = blocked_reduce(
      7, 7, 16, -1, [](std::size_t, std::size_t) { return 99; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, -1);
}

TEST(Par, NestedForBlockedRunsInline) {
  // A blocked loop inside a blocked loop (kernel inside a sweep job) must
  // complete without deadlock and still cover everything exactly once.
  std::mutex mu;
  std::set<std::pair<std::size_t, std::size_t>> cells;
  for_blocked(0, 8, 2, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      for_blocked(0, 6, 2, [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(cells.emplace(r, c).second) << "cell visited twice";
        }
      });
    }
  });
  EXPECT_EQ(cells.size(), 48u);
}

}  // namespace
}  // namespace ms::kern::par
