#include "kern/gemm.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace ms::kern {
namespace {

void fill(std::vector<double>& v, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (double& x : v) x = d(rng);
}

TEST(Gemm, MatchesReferenceSquare) {
  const std::size_t n = 37;
  std::vector<double> a(n * n), b(n * n), c1(n * n, 0.0), c2(n * n, 0.0);
  fill(a, 1);
  fill(b, 2);
  gemm_tile(a.data(), b.data(), c1.data(), n, n, n, n, n, n);
  gemm_reference(a.data(), b.data(), c2.data(), n, n, n, n, n, n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(Gemm, AccumulatesIntoC) {
  const std::size_t n = 8;
  std::vector<double> a(n * n), b(n * n), c(n * n, 1.0), expect(n * n, 1.0);
  fill(a, 3);
  fill(b, 4);
  gemm_reference(a.data(), b.data(), expect.data(), n, n, n, n, n, n);
  gemm_tile(a.data(), b.data(), c.data(), n, n, n, n, n, n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c[i], expect[i], 1e-12);
}

TEST(Gemm, IdentityLeavesMatrixUnchanged) {
  const std::size_t n = 16;
  std::vector<double> eye(n * n, 0.0), b(n * n), c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  fill(b, 5);
  gemm_tile(eye.data(), b.data(), c.data(), n, n, n, n, n, n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c[i], b[i], 1e-13);
}

TEST(Gemm, RectangularWithStrides) {
  // C (3x5) += A (3x4) * B (4x5), embedded in larger leading dimensions.
  const std::size_t m = 3, n = 5, k = 4, lda = 7, ldb = 9, ldc = 11;
  std::vector<double> a(m * lda), b(k * ldb), c1(m * ldc, 0.5), c2(m * ldc, 0.5);
  fill(a, 6);
  fill(b, 7);
  gemm_tile(a.data(), b.data(), c1.data(), m, n, k, lda, ldb, ldc);
  gemm_reference(a.data(), b.data(), c2.data(), m, n, k, lda, ldb, ldc);
  for (std::size_t i = 0; i < m * ldc; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-12);
}

TEST(Gemm, NtAccMatchesExplicitTranspose) {
  const std::size_t m = 6, n = 9, k = 13;
  std::vector<double> a(m * k), bt(n * k), b(k * n), c1(m * n, 0.0), c2(m * n, 0.0);
  fill(a, 8);
  fill(bt, 9);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < k; ++p) b[p * n + j] = bt[j * k + p];
  }
  gemm_nt_acc(a.data(), bt.data(), c1.data(), m, n, k, k, k, n);
  gemm_reference(a.data(), b.data(), c2.data(), m, n, k, k, n, n);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-12);
}

TEST(Gemm, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(gemm_flops(1000, 1000, 1000), 2e9);
}

TEST(Gemm, ZeroDimensionsAreNoOps) {
  std::vector<double> a(4), b(4), c(4, 7.0);
  gemm_tile(a.data(), b.data(), c.data(), 0, 2, 2, 2, 2, 2);
  gemm_tile(a.data(), b.data(), c.data(), 2, 2, 0, 2, 2, 2);
  for (const double x : c) EXPECT_DOUBLE_EQ(x, 7.0);
}

class GemmSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmSizeSweep, BlockedEqualsNaive) {
  const std::size_t n = GetParam();
  std::vector<double> a(n * n), b(n * n), c1(n * n, 0.0), c2(n * n, 0.0);
  fill(a, static_cast<unsigned>(n));
  fill(b, static_cast<unsigned>(n + 1));
  gemm_tile(a.data(), b.data(), c1.data(), n, n, n, n, n, n);
  gemm_reference(a.data(), b.data(), c2.data(), n, n, n, n, n, n);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) max_err = std::max(max_err, std::abs(c1[i] - c2[i]));
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizeSweep, ::testing::Values(1, 2, 5, 16, 63, 64, 65, 100));

}  // namespace
}  // namespace ms::kern
