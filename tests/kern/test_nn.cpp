#include "kern/nn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace ms::kern {
namespace {

std::vector<LatLng> random_records(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(0.0f, 180.0f);
  std::vector<LatLng> r(n);
  for (auto& x : r) x = LatLng{d(rng), d(rng)};
  return r;
}

TEST(Nn, DistanceIsEuclidean) {
  const std::vector<LatLng> rec{{3.0f, 4.0f}};
  std::vector<float> dist(1);
  nn_distances(rec.data(), dist.data(), 1, LatLng{0.0f, 0.0f});
  EXPECT_FLOAT_EQ(dist[0], 5.0f);
}

TEST(Nn, DistanceToSelfIsZero) {
  const LatLng t{40.0f, 120.0f};
  const std::vector<LatLng> rec{t};
  std::vector<float> dist(1, -1.0f);
  nn_distances(rec.data(), dist.data(), 1, t);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
}

TEST(Nn, MergeKeepsAscendingOrder) {
  std::vector<Neighbor> best(3, Neighbor{std::numeric_limits<float>::max(), 0});
  const std::vector<float> dist{5.0f, 1.0f, 3.0f, 4.0f, 0.5f};
  nn_merge_topk(dist.data(), dist.size(), 100, best.data(), 3);
  EXPECT_FLOAT_EQ(best[0].dist, 0.5f);
  EXPECT_EQ(best[0].index, 104u);
  EXPECT_FLOAT_EQ(best[1].dist, 1.0f);
  EXPECT_EQ(best[1].index, 101u);
  EXPECT_FLOAT_EQ(best[2].dist, 3.0f);
  EXPECT_EQ(best[2].index, 102u);
}

TEST(Nn, MergeAcrossBlocksEqualsGlobalTopK) {
  const auto rec = random_records(500, 9);
  const LatLng target{40.0f, 120.0f};
  std::vector<float> dist(rec.size());
  nn_distances(rec.data(), dist.data(), rec.size(), target);

  std::vector<Neighbor> best(10, Neighbor{std::numeric_limits<float>::max(), 0});
  // Merge in 4 unequal chunks, as the tiled app does.
  const std::size_t cuts[] = {0, 100, 137, 402, 500};
  for (int i = 0; i < 4; ++i) {
    nn_merge_topk(dist.data() + cuts[i], cuts[i + 1] - cuts[i], cuts[i], best.data(), 10);
  }
  const auto expect = nn_reference(rec.data(), rec.size(), target, 10);
  ASSERT_EQ(expect.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(best[i].dist, expect[i].dist) << i;
  }
}

TEST(Nn, ReferenceReturnsSortedUniqueIndices) {
  const auto rec = random_records(64, 10);
  const auto out = nn_reference(rec.data(), rec.size(), LatLng{10.0f, 10.0f}, 8);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].dist, out[i].dist);
    EXPECT_NE(out[i - 1].index, out[i].index);
  }
}

TEST(Nn, KLargerThanNClamps) {
  const auto rec = random_records(3, 11);
  const auto out = nn_reference(rec.data(), rec.size(), LatLng{0.0f, 0.0f}, 10);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Nn, MergeIgnoresWorseThanCurrentWorst) {
  std::vector<Neighbor> best{{1.0f, 1}, {2.0f, 2}};
  const std::vector<float> dist{9.0f};
  nn_merge_topk(dist.data(), 1, 0, best.data(), 2);
  EXPECT_FLOAT_EQ(best[1].dist, 2.0f);
}

class NnTopKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NnTopKSweep, BlockMergeMatchesReference) {
  const std::size_t k = GetParam();
  const auto rec = random_records(333, static_cast<unsigned>(k + 17));
  const LatLng target{90.0f, 90.0f};
  std::vector<float> dist(rec.size());
  nn_distances(rec.data(), dist.data(), rec.size(), target);
  std::vector<Neighbor> best(k, Neighbor{std::numeric_limits<float>::max(), 0});
  for (std::size_t off = 0; off < rec.size(); off += 37) {
    const std::size_t len = std::min<std::size_t>(37, rec.size() - off);
    nn_merge_topk(dist.data() + off, len, off, best.data(), k);
  }
  const auto expect = nn_reference(rec.data(), rec.size(), target, k);
  for (std::size_t i = 0; i < k; ++i) EXPECT_FLOAT_EQ(best[i].dist, expect[i].dist);
}

INSTANTIATE_TEST_SUITE_P(Ks, NnTopKSweep, ::testing::Values(1, 2, 5, 10, 32));

}  // namespace
}  // namespace ms::kern
