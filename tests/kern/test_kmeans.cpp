#include "kern/kmeans.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace ms::kern {
namespace {

TEST(Kmeans, AssignsToNearestCentroid) {
  // Two well-separated clusters in 1-D.
  const std::vector<float> points{0.0f, 0.1f, 0.2f, 10.0f, 10.1f};
  const std::vector<float> centroids{0.0f, 10.0f};
  std::vector<std::int32_t> memb(5, -1);
  kmeans_assign(points.data(), centroids.data(), memb.data(), 5, 1, 2);
  EXPECT_EQ(memb, (std::vector<std::int32_t>{0, 0, 0, 1, 1}));
}

TEST(Kmeans, TieBreaksToLowestIndex) {
  const std::vector<float> points{5.0f};
  const std::vector<float> centroids{0.0f, 10.0f};  // equidistant
  std::vector<std::int32_t> memb(1, -1);
  kmeans_assign(points.data(), centroids.data(), memb.data(), 1, 1, 2);
  EXPECT_EQ(memb[0], 0);
}

TEST(Kmeans, MultiDimensionalDistance) {
  const std::vector<float> points{1.0f, 1.0f, /*p1*/ 4.0f, 5.0f};
  const std::vector<float> centroids{0.0f, 0.0f, /*c1*/ 4.0f, 4.0f};
  std::vector<std::int32_t> memb(2, -1);
  kmeans_assign(points.data(), centroids.data(), memb.data(), 2, 2, 2);
  EXPECT_EQ(memb[0], 0);
  EXPECT_EQ(memb[1], 1);
}

TEST(Kmeans, AccumulateSumsAndCounts) {
  const std::vector<float> points{1.0f, 2.0f, 3.0f, 5.0f};
  const std::vector<std::int32_t> memb{0, 0, 1, 1};
  std::vector<float> sums(2, 0.0f);
  std::vector<std::int32_t> counts(2, 0);
  kmeans_accumulate(points.data(), memb.data(), sums.data(), counts.data(), 4, 1, 2);
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], 8.0f);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
}

TEST(Kmeans, UpdateComputesMeans) {
  const std::vector<float> sums{3.0f, 8.0f};
  const std::vector<std::int32_t> counts{2, 4};
  std::vector<float> cent(2, -1.0f);
  kmeans_update(sums.data(), counts.data(), cent.data(), 2, 1);
  EXPECT_FLOAT_EQ(cent[0], 1.5f);
  EXPECT_FLOAT_EQ(cent[1], 2.0f);
}

TEST(Kmeans, EmptyClusterKeepsPreviousCentroid) {
  const std::vector<float> sums{0.0f, 8.0f};
  const std::vector<std::int32_t> counts{0, 4};
  std::vector<float> cent{42.0f, 0.0f};
  kmeans_update(sums.data(), counts.data(), cent.data(), 2, 1);
  EXPECT_FLOAT_EQ(cent[0], 42.0f);
  EXPECT_FLOAT_EQ(cent[1], 2.0f);
}

TEST(Kmeans, DeltaCountsChangedMemberships) {
  const std::vector<std::int32_t> a{0, 1, 2, 3};
  const std::vector<std::int32_t> b{0, 1, 3, 2};
  EXPECT_EQ(kmeans_delta(a.data(), b.data(), 4), 2u);
  EXPECT_EQ(kmeans_delta(a.data(), a.data(), 4), 0u);
}

TEST(Kmeans, LloydIterationConvergesOnSeparatedClusters) {
  // Full algorithm loop built from the kernels: must find the two obvious
  // cluster centers.
  std::mt19937 rng(12);
  std::normal_distribution<float> n1(0.0f, 0.1f), n2(8.0f, 0.1f);
  const std::size_t n = 200, dims = 2, k = 2;
  std::vector<float> pts(n * dims);
  for (std::size_t i = 0; i < n / 2; ++i) {
    pts[i * 2] = n1(rng);
    pts[i * 2 + 1] = n1(rng);
  }
  for (std::size_t i = n / 2; i < n; ++i) {
    pts[i * 2] = n2(rng);
    pts[i * 2 + 1] = n2(rng);
  }
  std::vector<float> cent{pts[0], pts[1], pts[2], pts[3]};  // poor seeds, same cluster
  // Nudge the second seed toward the other mass so the clusters can split.
  cent[2] = 4.0f;
  cent[3] = 4.0f;
  std::vector<std::int32_t> memb(n, -1);
  for (int it = 0; it < 20; ++it) {
    kmeans_assign(pts.data(), cent.data(), memb.data(), n, dims, k);
    std::vector<float> sums(k * dims, 0.0f);
    std::vector<std::int32_t> counts(k, 0);
    kmeans_accumulate(pts.data(), memb.data(), sums.data(), counts.data(), n, dims, k);
    kmeans_update(sums.data(), counts.data(), cent.data(), k, dims);
  }
  // One centroid near (0,0), the other near (8,8), in either order.
  const bool order_a = std::abs(cent[0]) < 0.5 && std::abs(cent[2] - 8.0f) < 0.5;
  const bool order_b = std::abs(cent[2]) < 0.5 && std::abs(cent[0] - 8.0f) < 0.5;
  EXPECT_TRUE(order_a || order_b) << cent[0] << "," << cent[2];
}

TEST(Kmeans, AssignFlopsFormula) {
  EXPECT_DOUBLE_EQ(kmeans_assign_flops(10, 34, 8), 3.0 * 10 * 34 * 8);
}

}  // namespace
}  // namespace ms::kern
