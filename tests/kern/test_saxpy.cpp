#include "kern/saxpy_iter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ms::kern {
namespace {

TEST(SaxpyIter, ComputesAPlusAlpha) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b(3, 0.0f);
  saxpy_iter(a.data(), b.data(), 3, 0.5f, 1);
  EXPECT_FLOAT_EQ(b[0], 1.5f);
  EXPECT_FLOAT_EQ(b[1], 2.5f);
  EXPECT_FLOAT_EQ(b[2], 3.5f);
}

TEST(SaxpyIter, IsIdempotentAcrossIterations) {
  const std::vector<float> a{1.0f, -4.0f};
  std::vector<float> b1(2, 0.0f), b40(2, 0.0f);
  saxpy_iter(a.data(), b1.data(), 2, 2.0f, 1);
  saxpy_iter(a.data(), b40.data(), 2, 2.0f, 40);
  EXPECT_EQ(b1, b40);
}

TEST(SaxpyIter, ZeroIterationsLeavesOutputUntouched) {
  const std::vector<float> a{1.0f};
  std::vector<float> b{9.0f};
  saxpy_iter(a.data(), b.data(), 1, 1.0f, 0);
  EXPECT_FLOAT_EQ(b[0], 9.0f);
}

TEST(SaxpyIter, ElemsFormulaScalesWithIterations) {
  EXPECT_DOUBLE_EQ(saxpy_elems(100, 40), 4000.0);
  EXPECT_DOUBLE_EQ(saxpy_elems(0, 40), 0.0);
}

}  // namespace
}  // namespace ms::kern
