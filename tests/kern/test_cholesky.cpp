#include "kern/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace ms::kern {
namespace {

std::vector<double> spd_matrix(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<double> a(n * n);
  for (double& x : a) x = d(rng);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double avg = 0.5 * (a[i * n + j] + a[j * n + i]);
      a[i * n + j] = avg;
      a[j * n + i] = avg;
    }
    a[i * n + i] += static_cast<double>(n);
  }
  return a;
}

/// max |(L L^T)_{ij} - A_{ij}| over the lower triangle.
double factor_residual(const std::vector<double>& l, const std::vector<double>& a,
                       std::size_t n) {
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p <= j; ++p) s += l[i * n + p] * l[j * n + p];
      err = std::max(err, std::abs(s - a[i * n + j]));
    }
  }
  return err;
}

TEST(Cholesky, PotrfFactorsSpdMatrix) {
  const std::size_t n = 24;
  auto a = spd_matrix(n, 1);
  auto l = a;
  ASSERT_TRUE(potrf_tile(l.data(), n, n));
  EXPECT_LT(factor_residual(l, a, n), 1e-9);
}

TEST(Cholesky, PotrfDiagonalIsPositive) {
  const std::size_t n = 12;
  auto l = spd_matrix(n, 2);
  ASSERT_TRUE(potrf_tile(l.data(), n, n));
  for (std::size_t i = 0; i < n; ++i) EXPECT_GT(l[i * n + i], 0.0);
}

TEST(Cholesky, PotrfRejectsIndefiniteMatrix) {
  std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_FALSE(potrf_tile(a.data(), 2, 2));
}

TEST(Cholesky, PotrfOfIdentityIsIdentity) {
  const std::size_t n = 5;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  ASSERT_TRUE(potrf_tile(a.data(), n, n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(a[i * n + j], i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Cholesky, TrsmSolvesAgainstFactor) {
  // After X = B * L^{-T}, we must get X * L^T = B back.
  const std::size_t m = 7, n = 9;
  auto lsrc = spd_matrix(n, 3);
  ASSERT_TRUE(potrf_tile(lsrc.data(), n, n));
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> b(m * n);
  for (double& x : b) x = d(rng);
  auto x = b;
  trsm_tile(lsrc.data(), x.data(), m, n, n, n);
  // Recompute X * L^T and compare to B.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p <= j; ++p) s += x[i * n + p] * lsrc[j * n + p];
      EXPECT_NEAR(s, b[i * n + j], 1e-9);
    }
  }
}

TEST(Cholesky, SyrkUpdatesLowerTriangleOnly) {
  const std::size_t n = 6, k = 4;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(n * k), c(n * n, 10.0);
  for (double& x : a) x = d(rng);
  auto c0 = c;
  syrk_tile(a.data(), c.data(), n, k, k, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j > i) {
        EXPECT_DOUBLE_EQ(c[i * n + j], c0[i * n + j]);  // untouched
      } else {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += a[i * k + p] * a[j * k + p];
        EXPECT_NEAR(c[i * n + j], c0[i * n + j] - s, 1e-12);
      }
    }
  }
}

TEST(Cholesky, GemmNtSubtractsProduct) {
  const std::size_t m = 3, n = 4, k = 5;
  std::mt19937 rng(6);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(m * k), b(n * k), c(m * n, 2.0);
  for (double& x : a) x = d(rng);
  for (double& x : b) x = d(rng);
  gemm_nt_tile(a.data(), b.data(), c.data(), m, n, k, k, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[i * k + p] * b[j * k + p];
      EXPECT_NEAR(c[i * n + j], 2.0 - s, 1e-12);
    }
  }
}

TEST(Cholesky, TiledFactorizationEqualsUnblocked) {
  // Drive the four tile kernels by hand in right-looking order and compare
  // against a whole-matrix potrf — this is exactly what the CF app
  // schedules through streams.
  const std::size_t n = 24, tb = 8, g = n / tb;
  auto a = spd_matrix(n, 7);
  auto tiled = a;
  auto full = a;
  ASSERT_TRUE(cholesky_reference(full.data(), n, n));

  auto tile = [&](std::size_t i, std::size_t j) { return tiled.data() + (i * tb) * n + j * tb; };
  for (std::size_t k = 0; k < g; ++k) {
    ASSERT_TRUE(potrf_tile(tile(k, k), tb, n));
    for (std::size_t i = k + 1; i < g; ++i) {
      trsm_tile(tile(k, k), tile(i, k), tb, tb, n, n);
    }
    for (std::size_t j = k + 1; j < g; ++j) {
      for (std::size_t i = j; i < g; ++i) {
        if (i == j) {
          syrk_tile(tile(j, k), tile(j, j), tb, tb, n, n);
        } else {
          gemm_nt_tile(tile(i, k), tile(j, k), tile(i, j), tb, tb, tb, n, n, n);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(tiled[i * n + j], full[i * n + j], 1e-9) << i << "," << j;
    }
  }
}

TEST(Cholesky, FlopCountsArePositiveAndOrdered) {
  EXPECT_DOUBLE_EQ(potrf_flops(8), 512.0 / 3.0);
  EXPECT_DOUBLE_EQ(trsm_flops(8, 8), 512.0);
  EXPECT_DOUBLE_EQ(syrk_flops(8, 8), 512.0);
  EXPECT_DOUBLE_EQ(cholesky_flops(9600), 9600.0 * 9600.0 * 9600.0 / 3.0);
}

class CholeskySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeSweep, ResidualSmall) {
  const std::size_t n = GetParam();
  auto a = spd_matrix(n, static_cast<unsigned>(n));
  auto l = a;
  ASSERT_TRUE(potrf_tile(l.data(), n, n));
  EXPECT_LT(factor_residual(l, a, n), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep, ::testing::Values(1, 2, 3, 8, 17, 32, 64));

}  // namespace
}  // namespace ms::kern
