#include "kern/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace ms::kern {
namespace {

std::vector<double> dominant_matrix(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(n * n);
  for (double& x : a) x = d(rng);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n) + 1.0;
  return a;
}

/// max |(L U)_{ij} - A_{ij}| with unit-diagonal L packed below the diagonal.
double lu_residual(const std::vector<double>& lu, const std::vector<double>& a, std::size_t n) {
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double lik = k == i ? 1.0 : lu[i * n + k];
        s += lik * lu[k * n + j];
      }
      err = std::max(err, std::abs(s - a[i * n + j]));
    }
  }
  return err;
}

TEST(Lu, GetrfFactorsDominantMatrix) {
  const std::size_t n = 20;
  const auto a = dominant_matrix(n, 1);
  auto lu = a;
  ASSERT_TRUE(getrf_tile(lu.data(), n, n));
  EXPECT_LT(lu_residual(lu, a, n), 1e-9);
}

TEST(Lu, GetrfRejectsSingularMatrix) {
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};  // zero pivot, no pivoting
  EXPECT_FALSE(getrf_tile(a.data(), 2, 2));
}

TEST(Lu, IdentityIsFixedPoint) {
  const std::size_t n = 6;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  ASSERT_TRUE(getrf_tile(a.data(), n, n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(a[i * n + j], i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Lu, TrsmLowerLeftSolves) {
  // After B' = L^{-1} B we must have L B' = B.
  const std::size_t n = 8, m = 5;
  auto lu = dominant_matrix(n, 2);
  ASSERT_TRUE(getrf_tile(lu.data(), n, n));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> b(n * m);
  for (double& x : b) x = d(rng);
  auto x = b;
  trsm_lower_left(lu.data(), x.data(), n, m, n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double s = x[i * m + j];
      for (std::size_t p = 0; p < i; ++p) s += lu[i * n + p] * x[p * m + j];
      EXPECT_NEAR(s, b[i * m + j], 1e-9);
    }
  }
}

TEST(Lu, TrsmUpperRightSolves) {
  // After B' = B U^{-1} we must have B' U = B.
  const std::size_t n = 8, m = 5;
  auto lu = dominant_matrix(n, 4);
  ASSERT_TRUE(getrf_tile(lu.data(), n, n));
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> b(m * n);
  for (double& x : b) x = d(rng);
  auto x = b;
  trsm_upper_right(lu.data(), x.data(), m, n, n, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p <= j; ++p) s += x[i * n + p] * lu[p * n + j];
      EXPECT_NEAR(s, b[i * n + j], 1e-9);
    }
  }
}

TEST(Lu, GemmNnSubSubtractsProduct) {
  const std::size_t m = 3, n = 4, k = 5;
  std::mt19937 rng(6);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(m * k), b(k * n), c(m * n, 1.5);
  for (double& x : a) x = d(rng);
  for (double& x : b) x = d(rng);
  gemm_nn_sub(a.data(), b.data(), c.data(), m, n, k, k, n, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
      EXPECT_NEAR(c[i * n + j], 1.5 - s, 1e-12);
    }
  }
}

TEST(Lu, TiledFactorizationEqualsUnblocked) {
  const std::size_t n = 24, tb = 8, g = n / tb;
  auto a = dominant_matrix(n, 7);
  auto tiled = a;
  auto full = a;
  ASSERT_TRUE(lu_reference(full.data(), n, n));

  auto tile = [&](std::size_t i, std::size_t j) { return tiled.data() + (i * tb) * n + j * tb; };
  for (std::size_t k = 0; k < g; ++k) {
    ASSERT_TRUE(getrf_tile(tile(k, k), tb, n));
    for (std::size_t j = k + 1; j < g; ++j) trsm_lower_left(tile(k, k), tile(k, j), tb, tb, n, n);
    for (std::size_t i = k + 1; i < g; ++i) trsm_upper_right(tile(k, k), tile(i, k), tb, tb, n, n);
    for (std::size_t i = k + 1; i < g; ++i) {
      for (std::size_t j = k + 1; j < g; ++j) {
        gemm_nn_sub(tile(i, k), tile(k, j), tile(i, j), tb, tb, tb, n, n, n);
      }
    }
  }
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(tiled[i], full[i], 1e-9);
}

TEST(Lu, SolveInvertsTheSystem) {
  const std::size_t n = 16;
  const auto a = dominant_matrix(n, 8);
  auto lu = a;
  ASSERT_TRUE(getrf_tile(lu.data(), n, n));
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = static_cast<double>(i) - 3.5;
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }
  lu_solve(lu.data(), b.data(), n, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
}

TEST(Lu, FlopFormulas) {
  EXPECT_DOUBLE_EQ(getrf_flops(6), 144.0);
  EXPECT_DOUBLE_EQ(lu_trsm_flops(4, 8), 128.0);
  // The paper's remark: LU costs ~2x CF's n^3/3 for the same n.
  EXPECT_DOUBLE_EQ(getrf_flops(1000) / (1000.0 * 1000.0 * 1000.0 / 3.0), 2.0);
}

class LuSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizeSweep, ResidualSmall) {
  const std::size_t n = GetParam();
  const auto a = dominant_matrix(n, static_cast<unsigned>(n));
  auto lu = a;
  ASSERT_TRUE(getrf_tile(lu.data(), n, n));
  EXPECT_LT(lu_residual(lu, a, n), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep, ::testing::Values(1, 2, 3, 8, 17, 32, 48));

}  // namespace
}  // namespace ms::kern
