// Satellite of the kernel execution engine: every parallelized kernel must be
// bit-identical across thread counts. Each case runs the kernel under
// par::ThreadScope for 1 / 2 / hardware_concurrency / default workers on the
// same seeded input, sized to span several engine blocks, and memcmps the
// outputs against the single-threaded run.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "kern/gemm.hpp"
#include "kern/hotspot.hpp"
#include "kern/kmeans.hpp"
#include "kern/nn.hpp"
#include "kern/par.hpp"
#include "kern/saxpy_iter.hpp"
#include "kern/srad.hpp"

namespace ms::kern {
namespace {

std::vector<int> thread_sweep() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return {2, hw > 1 ? hw : 4, 0};
}

template <typename T>
std::vector<T> random_vec(std::size_t n, unsigned seed, double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(lo, hi);
  std::vector<T> v(n);
  for (T& x : v) x = static_cast<T>(d(rng));
  return v;
}

/// Runs `kernel` (filling `out`) once per thread count and verifies the raw
/// bytes of `out` match the single-threaded run.
template <typename T, typename Fn>
void expect_bit_identical(std::vector<T>& out, const std::vector<T>& init, Fn&& kernel) {
  std::vector<T> want;
  {
    par::ThreadScope scope(1);
    out = init;
    kernel();
    want = out;
  }
  for (const int t : thread_sweep()) {
    par::ThreadScope scope(t);
    out = init;
    kernel();
    ASSERT_EQ(out.size(), want.size());
    EXPECT_EQ(std::memcmp(out.data(), want.data(), out.size() * sizeof(T)), 0)
        << "threads=" << t;
  }
}

TEST(KernDeterminism, GemmTile) {
  const std::size_t m = 300, n = 70, k = 60;  // 3 row bands, full + fringe panels
  const auto a = random_vec<double>(m * k, 11);
  const auto b = random_vec<double>(k * n, 12);
  const auto c0 = random_vec<double>(m * n, 13);
  std::vector<double> c;
  expect_bit_identical(c, c0,
                       [&] { gemm_tile(a.data(), b.data(), c.data(), m, n, k, k, n, n); });

  // And against the naive oracle (different summation order, so NEAR).
  auto ref = c0;
  gemm_reference(a.data(), b.data(), ref.data(), m, n, k, k, n, n);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-10);
}

TEST(KernDeterminism, GemmNtAcc) {
  const std::size_t m = 300, n = 41, k = 70;  // j fringe + k % lanes tail
  const auto a = random_vec<double>(m * k, 21);
  const auto bt = random_vec<double>(n * k, 22);
  const auto c0 = random_vec<double>(m * n, 23);
  std::vector<double> c;
  expect_bit_identical(c, c0,
                       [&] { gemm_nt_acc(a.data(), bt.data(), c.data(), m, n, k, k, k, n); });
}

TEST(KernDeterminism, HotspotStep) {
  const std::size_t rows = 150, cols = 37;  // 3 bands, clamped edge columns
  const auto t_in = random_vec<double>(rows * cols, 31, 40.0, 90.0);
  const auto power = random_vec<double>(rows * cols, 32, 0.0, 1.0);
  const std::vector<double> init(rows * cols, 0.0);
  const HotspotParams p;
  std::vector<double> t_out;
  expect_bit_identical(t_out, init, [&] {
    hotspot_step(t_in.data(), power.data(), t_out.data(), rows, cols, 0, rows, 0, cols, p);
  });
}

TEST(KernDeterminism, KmeansAssign) {
  const std::size_t n = 70000, dims = 8, k = 5;  // 3 point chunks
  const auto points = random_vec<float>(n * dims, 41);
  const auto centroids = random_vec<float>(k * dims, 42);
  const std::vector<std::int32_t> init(n, -1);
  std::vector<std::int32_t> membership;
  expect_bit_identical(membership, init, [&] {
    kmeans_assign(points.data(), centroids.data(), membership.data(), n, dims, k);
  });
}

TEST(KernDeterminism, NnDistancesAndTopk) {
  const std::size_t n = 70000, k = 10;
  std::vector<LatLng> records(n);
  const auto coords = random_vec<float>(n * 2, 51, 0.0, 180.0);
  for (std::size_t i = 0; i < n; ++i) records[i] = LatLng{coords[2 * i], coords[2 * i + 1]};
  const LatLng target{90.0f, 90.0f};

  const std::vector<float> dinit(n, 0.0f);
  std::vector<float> dist;
  expect_bit_identical(dist, dinit,
                       [&] { nn_distances(records.data(), dist.data(), n, target); });

  // Blocked top-k must equal the sequential scan exactly, list slot by slot.
  std::vector<Neighbor> seq(k, Neighbor{std::numeric_limits<float>::max(), 0});
  nn_merge_topk(dist.data(), n, 0, seq.data(), k);
  for (const int t : thread_sweep()) {
    par::ThreadScope scope(t);
    std::vector<Neighbor> par_best(k, Neighbor{std::numeric_limits<float>::max(), 0});
    nn_topk(dist.data(), n, 0, par_best.data(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(par_best[i].dist, seq[i].dist) << "slot " << i << " threads=" << t;
      EXPECT_EQ(par_best[i].index, seq[i].index) << "slot " << i << " threads=" << t;
    }
  }
}

TEST(KernDeterminism, SradStatistics) {
  const std::size_t cells = 70000;  // 3 chunks
  const auto j = random_vec<float>(cells, 61, 0.5, 2.0);
  double want_s = 0.0, want_s2 = 0.0;
  {
    par::ThreadScope scope(1);
    srad_statistics(j.data(), 0, cells, &want_s, &want_s2);
  }
  for (const int t : thread_sweep()) {
    par::ThreadScope scope(t);
    double s = 0.0, s2 = 0.0;
    srad_statistics(j.data(), 0, cells, &s, &s2);
    EXPECT_EQ(s, want_s) << "threads=" << t;
    EXPECT_EQ(s2, want_s2) << "threads=" << t;
  }
}

TEST(KernDeterminism, SradPipeline2D) {
  const std::size_t rows = 150, cols = 300;  // 3 row bands
  const auto img = random_vec<float>(rows * cols, 71, 10.0, 200.0);
  const std::vector<float> zero(rows * cols, 0.0f);

  std::vector<float> j;
  expect_bit_identical(j, zero, [&] {
    srad_extract_2d(img.data(), j.data(), cols, 0, rows, 0, cols);
  });

  double want_s = 0.0, want_s2 = 0.0;
  {
    par::ThreadScope scope(1);
    srad_statistics_2d(j.data(), cols, 0, rows, 0, cols, &want_s, &want_s2);
  }
  for (const int t : thread_sweep()) {
    par::ThreadScope scope(t);
    double s = 0.0, s2 = 0.0;
    srad_statistics_2d(j.data(), cols, 0, rows, 0, cols, &s, &s2);
    EXPECT_EQ(s, want_s) << "threads=" << t;
    EXPECT_EQ(s2, want_s2) << "threads=" << t;
  }
  const double q0 = srad_q0sqr(want_s, want_s2, rows * cols);

  std::vector<float> c, dn(rows * cols), ds(rows * cols), dw(rows * cols), de(rows * cols);
  expect_bit_identical(c, zero, [&] {
    srad_coeff(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), rows, cols, 0,
               rows, 0, cols, q0);
  });

  std::vector<float> j2;
  expect_bit_identical(j2, j, [&] {
    srad_update(j2.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), rows, cols, 0,
                rows, 0, cols, 0.5);
  });

  std::vector<float> back;
  expect_bit_identical(back, zero, [&] {
    srad_compress_2d(j2.data(), back.data(), cols, 0, rows, 0, cols);
  });
}

TEST(KernDeterminism, SaxpyIter) {
  const std::size_t n = 70000;
  const auto a = random_vec<float>(n, 81);
  const std::vector<float> init(n, 0.0f);
  std::vector<float> b;
  expect_bit_identical(b, init, [&] { saxpy_iter(a.data(), b.data(), n, 1.5f, 3); });
}

}  // namespace
}  // namespace ms::kern
