#include "kern/srad.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace ms::kern {
namespace {

std::vector<float> random_image(std::size_t cells, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(10.0f, 200.0f);
  std::vector<float> img(cells);
  for (float& x : img) x = d(rng);
  return img;
}

TEST(Srad, ExtractIsExp) {
  const std::vector<float> img{0.0f, 255.0f};
  std::vector<float> j(2, 0.0f);
  srad_extract(img.data(), j.data(), 0, 2);
  EXPECT_FLOAT_EQ(j[0], 1.0f);
  EXPECT_NEAR(j[1], std::exp(1.0f), 1e-5);
}

TEST(Srad, CompressInvertsExtract) {
  const auto img = random_image(64, 1);
  std::vector<float> j(64), back(64);
  srad_extract(img.data(), j.data(), 0, 64);
  srad_compress(j.data(), back.data(), 0, 64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(back[i], img[i], 1e-3);
}

TEST(Srad, StatisticsComputeSums) {
  const std::vector<float> j{1.0f, 2.0f, 3.0f};
  double s = 0.0, s2 = 0.0;
  srad_statistics(j.data(), 0, 3, &s, &s2);
  EXPECT_DOUBLE_EQ(s, 6.0);
  EXPECT_DOUBLE_EQ(s2, 14.0);
}

TEST(Srad, StatisticsOverSubrange) {
  const std::vector<float> j{1.0f, 2.0f, 3.0f, 4.0f};
  double s = 0.0, s2 = 0.0;
  srad_statistics(j.data(), 1, 3, &s, &s2);
  EXPECT_DOUBLE_EQ(s, 5.0);
  EXPECT_DOUBLE_EQ(s2, 13.0);
}

TEST(Srad, Q0sqrOfConstantImageIsZero) {
  EXPECT_NEAR(srad_q0sqr(10.0, 10.0, 10), 0.0, 1e-12);  // all values 1.0
}

TEST(Srad, Q0sqrIsNormalizedVariance) {
  // Two values {1, 3}: mean 2, var 1, q0^2 = 1/4.
  EXPECT_DOUBLE_EQ(srad_q0sqr(4.0, 10.0, 2), 0.25);
}

TEST(Srad, CoeffInUnitRange) {
  const std::size_t n = 12;
  auto img = random_image(n * n, 2);
  std::vector<float> j(n * n), c(n * n), dn(n * n), ds(n * n), dw(n * n), de(n * n);
  srad_extract(img.data(), j.data(), 0, n * n);
  double s = 0.0, s2 = 0.0;
  srad_statistics(j.data(), 0, n * n, &s, &s2);
  srad_coeff(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, 0, n, 0, n,
             srad_q0sqr(s, s2, n * n));
  for (const float x : c) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST(Srad, ConstantImageIsFixedPoint) {
  // On a constant J the gradients vanish, so the update must not change J.
  const std::size_t n = 8;
  std::vector<float> j(n * n, 2.0f), c(n * n), dn(n * n), ds(n * n), dw(n * n), de(n * n);
  srad_coeff(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, 0, n, 0, n,
             0.5);
  auto j2 = j;
  srad_update(j2.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, 0, n, 0, n,
              0.5);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_FLOAT_EQ(j2[i], j[i]);
}

TEST(Srad, DiffusionSmoothsSpeckle) {
  // A single bright pixel should lose intensity relative to its value.
  const std::size_t n = 9;
  std::vector<float> j(n * n, 1.0f);
  j[40] = 3.0f;
  std::vector<float> c(n * n), dn(n * n), ds(n * n), dw(n * n), de(n * n);
  double s = 0.0, s2 = 0.0;
  srad_statistics(j.data(), 0, n * n, &s, &s2);
  srad_coeff(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, 0, n, 0, n,
             srad_q0sqr(s, s2, n * n));
  srad_update(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, 0, n, 0, n,
              0.5);
  EXPECT_LT(j[40], 3.0f);
}

TEST(Srad, TiledPipelineEqualsWholeImage) {
  // One full iteration computed tile-by-tile must equal the whole-image
  // computation (the streamed-vs-baseline functional equivalence at the
  // kernel level).
  const std::size_t n = 16;
  auto img = random_image(n * n, 3);
  std::vector<float> jw(n * n), jt(n * n);
  srad_extract(img.data(), jw.data(), 0, n * n);
  jt = jw;

  auto run_iteration = [&](std::vector<float>& j, std::size_t tile) {
    std::vector<float> c(n * n), dn(n * n), ds(n * n), dw(n * n), de(n * n);
    double s = 0.0, s2 = 0.0;
    for (std::size_t r0 = 0; r0 < n; r0 += tile) {
      double ps = 0.0, ps2 = 0.0;
      srad_statistics(j.data(), r0 * n, (r0 + tile) * n, &ps, &ps2);
      s += ps;
      s2 += ps2;
    }
    const double q0 = srad_q0sqr(s, s2, n * n);
    for (std::size_t r0 = 0; r0 < n; r0 += tile) {
      for (std::size_t c0 = 0; c0 < n; c0 += tile) {
        srad_coeff(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, r0,
                   r0 + tile, c0, c0 + tile, q0);
      }
    }
    for (std::size_t r0 = 0; r0 < n; r0 += tile) {
      for (std::size_t c0 = 0; c0 < n; c0 += tile) {
        srad_update(j.data(), c.data(), dn.data(), ds.data(), dw.data(), de.data(), n, n, r0,
                    r0 + tile, c0, c0 + tile, 0.5);
      }
    }
  };
  run_iteration(jw, n);   // whole image
  run_iteration(jt, 4);   // 4x4 tiles
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_FLOAT_EQ(jt[i], jw[i]);
}

TEST(Srad, WorkFormulas) {
  EXPECT_DOUBLE_EQ(srad_coeff_flops(2, 8), 22.0 * 16);
  EXPECT_DOUBLE_EQ(srad_update_flops(2, 8), 8.0 * 16);
  EXPECT_DOUBLE_EQ(srad_elems(2, 8), 6.0 * 16);
}

}  // namespace
}  // namespace ms::kern
