#include "kern/hotspot.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace ms::kern {
namespace {

TEST(Hotspot, UniformGridWithoutPowerRelaxesToAmbient) {
  const std::size_t n = 8;
  HotspotParams p;
  std::vector<double> t(n * n, 100.0), power(n * n, 0.0), out(n * n, 0.0);
  hotspot_step(t.data(), power.data(), out.data(), n, n, 0, n, 0, n, p);
  // With a uniform grid the neighbour terms vanish; only the ambient pull
  // remains, which moves every cell toward t_ambient (80).
  for (const double v : out) {
    EXPECT_LT(v, 100.0);
    EXPECT_GT(v, p.t_ambient);
  }
}

TEST(Hotspot, PowerHeatsTheCell) {
  const std::size_t n = 4;
  HotspotParams p;
  std::vector<double> t(n * n, p.t_ambient), power(n * n, 0.0), out(n * n, 0.0);
  power[5] = 100.0;
  hotspot_step(t.data(), power.data(), out.data(), n, n, 0, n, 0, n, p);
  EXPECT_GT(out[5], p.t_ambient);
  EXPECT_DOUBLE_EQ(out[0], p.t_ambient);  // no power, already at ambient
}

TEST(Hotspot, HeatDiffusesToNeighbors) {
  const std::size_t n = 5;
  HotspotParams p;
  std::vector<double> t(n * n, p.t_ambient), power(n * n, 0.0), out(n * n, 0.0);
  t[12] = p.t_ambient + 50.0;  // hot center
  hotspot_step(t.data(), power.data(), out.data(), n, n, 0, n, 0, n, p);
  EXPECT_LT(out[12], t[12]);               // center cools
  EXPECT_GT(out[11], p.t_ambient);         // west neighbour warms
  EXPECT_GT(out[7], p.t_ambient);          // north neighbour warms
  EXPECT_DOUBLE_EQ(out[0], p.t_ambient);   // far corner untouched
}

TEST(Hotspot, BandUpdateWritesOnlyItsRows) {
  const std::size_t n = 6;
  HotspotParams p;
  std::vector<double> t(n * n, 90.0), power(n * n, 1.0), out(n * n, -1.0);
  hotspot_step(t.data(), power.data(), out.data(), n, n, 2, 4, 0, n, p);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r >= 2 && r < 4) {
        EXPECT_NE(out[r * n + c], -1.0);
      } else {
        EXPECT_DOUBLE_EQ(out[r * n + c], -1.0);
      }
    }
  }
}

TEST(Hotspot, ColumnRangeWritesOnlyItsColumns) {
  const std::size_t n = 6;
  HotspotParams p;
  std::vector<double> t(n * n, 90.0), power(n * n, 1.0), out(n * n, -1.0);
  hotspot_step(t.data(), power.data(), out.data(), n, n, 0, n, 1, 3, p);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c >= 1 && c < 3) {
        EXPECT_NE(out[r * n + c], -1.0);
      } else {
        EXPECT_DOUBLE_EQ(out[r * n + c], -1.0);
      }
    }
  }
}

TEST(Hotspot, TiledStepEqualsWholeGridStep) {
  // The tiling the streamed app uses must be bit-identical to the
  // whole-grid kernel (tiles read the same input grid).
  const std::size_t n = 16;
  HotspotParams p;
  std::vector<double> t(n * n), power(n * n), whole(n * n, 0.0), tiled(n * n, 0.0);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(60.0, 100.0);
  for (double& x : t) x = d(rng);
  for (double& x : power) x = d(rng) * 0.01;
  hotspot_step(t.data(), power.data(), whole.data(), n, n, 0, n, 0, n, p);
  for (std::size_t r0 = 0; r0 < n; r0 += 4) {
    for (std::size_t c0 = 0; c0 < n; c0 += 8) {
      hotspot_step(t.data(), power.data(), tiled.data(), n, n, r0, r0 + 4, c0, c0 + 8, p);
    }
  }
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(tiled[i], whole[i]);
}

TEST(Hotspot, WorkFormulas) {
  EXPECT_DOUBLE_EQ(hotspot_elems(4, 8), 6.0 * 32);
  EXPECT_DOUBLE_EQ(hotspot_flops(4, 8), 12.0 * 32);
}

}  // namespace
}  // namespace ms::kern
